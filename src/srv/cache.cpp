#include "src/srv/cache.hpp"

namespace sectorpack::srv {

ResultCache::ResultCache(std::size_t max_entries)
    : max_entries_(max_entries),
      hit_counter_(obs::counter("srv.cache.hit")),
      miss_counter_(obs::counter("srv.cache.miss")),
      eviction_counter_(obs::counter("srv.cache.evicted")),
      entries_gauge_(obs::gauge("srv.cache.entries")) {
  entries_gauge_.set(0.0);
}

std::optional<model::Solution> ResultCache::lookup(const Fingerprint& fp) {
  const core::LockGuard lock(mu_);
  const auto it = map_.find(fp);
  if (it == map_.end()) {
    ++misses_;
    miss_counter_.inc();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
  ++hits_;
  hit_counter_.inc();
  return it->second->second;
}

void ResultCache::insert(const Fingerprint& fp, model::Solution canonical) {
  if (max_entries_ == 0) return;
  const core::LockGuard lock(mu_);
  const auto it = map_.find(fp);
  if (it != map_.end()) {
    // Refresh: same fingerprint means the same problem, so the payload is
    // equivalent; keep the newer one and bump recency.
    it->second->second = std::move(canonical);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(fp, std::move(canonical));
  map_.emplace(fp, lru_.begin());
  if (map_.size() > max_entries_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
    eviction_counter_.inc();
  }
  entries_gauge_.set(static_cast<double>(map_.size()));
}

std::size_t ResultCache::size() const {
  const core::LockGuard lock(mu_);
  return map_.size();
}

std::uint64_t ResultCache::hits() const {
  const core::LockGuard lock(mu_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  const core::LockGuard lock(mu_);
  return misses_;
}

std::uint64_t ResultCache::evictions() const {
  const core::LockGuard lock(mu_);
  return evictions_;
}

}  // namespace sectorpack::srv
