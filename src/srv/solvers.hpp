#pragma once
// Single source of truth for solver-family names and dispatch.
//
// The CLI's --solver validation, the batch/serve engine's is_known_solver
// and run_solver, and the race portfolio parser all consume this one
// table; before it existed each kept its own hardcoded list and adding a
// family meant updating them in lockstep (tests/test_srv.cpp now asserts
// they cannot drift). Each row carries the family's display name, its
// fixed race tie-break priority, a dispatch function building the
// family's config from a SolverKey, and -- for families that can start
// from an existing feasible solution -- a warm-start entry point used by
// the portfolio race's incumbent exchange.

#include <span>
#include <string>
#include <string_view>

#include "src/core/deadline.hpp"
#include "src/model/solution.hpp"
#include "src/srv/fingerprint.hpp"

namespace sectorpack::srv {

/// One registry row. `run` never returns an infeasible solution (every
/// family's postcondition); it may throw (e.g. the exact solver's
/// tuple-space overflow). `run_seeded` is null for families that cannot
/// exploit a starting solution; when present, seeding with the family's
/// own cold start is byte-identical to `run`.
struct SolverFamily {
  const char* name;
  /// Deterministic race tie-break: among equal-value results the lowest
  /// priority wins. Unique per family; ordered by the family's usual
  /// quality on saturated instances (exact first).
  int priority;
  model::Solution (*run)(const model::Instance& inst, const SolverKey& key,
                         const core::SolveOptions& opts);
  model::Solution (*run_seeded)(const model::Instance& inst,
                                const SolverKey& key,
                                const core::SolveOptions& opts,
                                const model::Solution& seed);
};

/// All registered families, in a fixed order (stable across runs; tests
/// rely on it only through each row's `priority`).
[[nodiscard]] std::span<const SolverFamily> solver_families() noexcept;

/// Registry lookup; nullptr when `name` is not a family.
[[nodiscard]] const SolverFamily* find_solver_family(
    std::string_view name) noexcept;

/// All family names joined by `sep`, for usage/help text -- generated so
/// help can never drift from the registry either.
[[nodiscard]] std::string solver_family_names(const char* sep);

}  // namespace sectorpack::srv
