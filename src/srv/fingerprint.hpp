#pragma once
// Canonical instance fingerprints for the batch result cache.
//
// Two requests hit the same cache entry exactly when they describe the
// same *problem*: the same multiset of customers, the same multiset of
// antennas, and the same solver configuration (family, seed, iterations).
// Presentation differences -- customer or antenna order in the file,
// whitespace, v1 vs v2 format when the extra columns are at their
// defaults -- must not change the fingerprint, while any change to a
// demand, position, value, antenna spec, seed, or solver family must.
//
// The canonicalization is a sort: entity indices are ordered by their full
// numeric tuple (exact comparison -- ties are bit-identical entities and
// therefore interchangeable), and the 128-bit fingerprint is a sequence
// hash over the sorted tuples plus the solver key. Because a permuted
// instance has a *different index space*, the cache never stores a raw
// solution: it stores the solution re-indexed into canonical entity order
// (to_canonical), and a hit projects it back through the requesting
// instance's own permutation (from_canonical). For a byte-identical
// request the two permutations coincide and the projected solution is
// exactly the one originally solved.
//
// Signed zeros are collapsed (-0.0 hashes and sorts as +0.0); NaNs never
// reach this layer (model::io rejects them at parse time).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/model/solution.hpp"

namespace sectorpack::srv {

/// 128-bit order-independent instance+config hash (two independently
/// seeded 64-bit sequence hashes; collisions are negligible at batch
/// scale, and a verify pass on every cache hit backstops them anyway).
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) {
    return !(a == b);
  }

  /// 32 hex digits, for logs and responses.
  [[nodiscard]] std::string to_hex() const;
};

struct FingerprintHasher {
  [[nodiscard]] std::size_t operator()(const Fingerprint& fp) const noexcept {
    return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9E3779B97F4A7C15ULL));
  }
};

/// The solver configuration that participates in the cache key. `seed` and
/// `iterations` only steer the annealing family today, and `portfolio`
/// (a comma-separated family list) only the race family, but all are
/// hashed for every family: a conservative key never serves a stale
/// result.
struct SolverKey {
  std::string family = "local-search";
  std::uint64_t seed = 1;
  std::uint64_t iterations = 2000;
  std::string portfolio;  // race only; empty = the default portfolio
};

/// An instance's cache identity: the fingerprint plus the permutations
/// that map canonical entity order back to this instance's index space.
/// customer_order[c] / antenna_order[a] give the instance index of the
/// canonically c-th customer / a-th antenna.
struct CanonicalInstance {
  Fingerprint fingerprint;
  std::vector<std::uint32_t> customer_order;
  std::vector<std::uint32_t> antenna_order;
};

[[nodiscard]] CanonicalInstance canonicalize(const model::Instance& inst,
                                             const SolverKey& key);

/// Re-index a solution of `canon`'s instance into canonical entity order
/// (alphas and assignment targets move to antenna ranks, assignment rows
/// to customer ranks). Status is preserved.
[[nodiscard]] model::Solution to_canonical(const CanonicalInstance& canon,
                                           const model::Solution& sol);

/// Inverse of to_canonical against (a possibly different permutation of)
/// the same canonical instance: project a cached canonical solution into
/// `canon`'s index space.
[[nodiscard]] model::Solution from_canonical(const CanonicalInstance& canon,
                                             const model::Solution& canonical);

}  // namespace sectorpack::srv
