#pragma once
// Minimal JSON-lines support for the batch request engine.
//
// Requests are one flat JSON object per line with scalar values only
// (string, number, true/false, null) -- see docs/serving.md for the schema.
// That restriction keeps the parser small and auditable under the same
// hostile-input rules as src/model/io: strict single-line framing, no
// nesting, no duplicate keys, no trailing bytes, and every rejection is a
// std::runtime_error naming what broke. Responses are emitted with the
// JSON string/number formatters shared with the obs snapshot writer.

#include <map>
#include <string>
#include <string_view>

namespace sectorpack::srv {

/// One scalar value from a request object.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
};

/// Key -> value of one request line (flat: nested objects/arrays rejected).
using JsonObject = std::map<std::string, JsonValue>;

/// Parse one JSONL line as a flat object of scalars. Throws
/// std::runtime_error on any syntax error, nesting, duplicate key, or
/// trailing non-whitespace.
[[nodiscard]] JsonObject parse_flat_object(std::string_view line);

}  // namespace sectorpack::srv
