#pragma once
// Thread-safe LRU cache of canonical solve results, keyed by instance
// fingerprint (src/srv/fingerprint.hpp).
//
// Policy decisions, in one place:
//  * Only *complete* solutions are cached. A budget-exhausted incumbent is
//    an artifact of one request's deadline; serving it to a later request
//    with a larger (or no) budget would silently degrade that request.
//  * Entries store the solution in canonical entity order; the engine
//    projects hits back into the requesting instance's index space and
//    verifies them (verify::verify_solution), so a permuted-instance hit
//    can never smuggle an infeasible assignment into a response.
//  * Hits, misses, and evictions feed the obs counters srv.cache.hit /
//    srv.cache.miss / srv.cache.evicted, and srv.cache.entries gauges the
//    current size, so `--stats json` exposes cache effectiveness.

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "src/core/sync.hpp"
#include "src/model/solution.hpp"
#include "src/obs/metrics.hpp"
#include "src/srv/fingerprint.hpp"

namespace sectorpack::srv {

class ResultCache {
 public:
  /// Capacity in entries. 0 disables the cache: every lookup is a miss and
  /// nothing is stored (the counters still tick, so a disabled cache is
  /// visible in the stats instead of looking like a 0% hit rate bug).
  explicit ResultCache(std::size_t max_entries);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Look up a canonical solution; bumps the entry to most-recently-used
  /// and the hit/miss counters either way.
  [[nodiscard]] std::optional<model::Solution> lookup(const Fingerprint& fp);

  /// Insert (or refresh) an entry, evicting the least-recently-used entry
  /// when full. Call with canonical-order solutions only.
  void insert(const Fingerprint& fp, model::Solution canonical);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }

  /// Lifetime tallies, mirrored in the obs counters (kept locally too so
  /// the batch summary does not depend on obs being enabled).
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  using LruList = std::list<std::pair<Fingerprint, model::Solution>>;

  mutable core::Mutex mu_;
  LruList lru_ SP_GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<Fingerprint, LruList::iterator, FingerprintHasher> map_
      SP_GUARDED_BY(mu_);
  const std::size_t max_entries_;
  std::uint64_t hits_ SP_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ SP_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ SP_GUARDED_BY(mu_) = 0;
  obs::Counter hit_counter_;
  obs::Counter miss_counter_;
  obs::Counter eviction_counter_;
  obs::Gauge entries_gauge_;
};

}  // namespace sectorpack::srv
