#pragma once
// Batch request engine: solve many instances in one process.
//
// `sectorpack batch` reads one JSON request per line, fans the requests out
// over a bounded admission queue (par::BoundedQueue) into a dedicated
// par::ThreadPool, and writes one JSON response per request, in input
// order. The engine composes the existing machinery instead of growing new
// solver paths: per-request budgets are core::Deadline (clamped under the
// batch-wide budget via Deadline::after_at_most), solving goes through the
// same run_solver dispatch the `solve` subcommand uses (so a cache miss is
// byte-identical to a single-shot solve), results are memoized in an LRU
// ResultCache keyed by canonical instance fingerprint, and every response
// -- fresh or cached -- passes through the src/verify/ invariants.
//
// Failure isolation is per request: a malformed line, an unreadable
// instance, or an unknown solver yields a status "invalid" response and
// the batch continues. A global budget or an interrupt (SIGINT in the CLI)
// stops admission, cancels the deadlines of in-flight solves (they finish
// as feasible budget-exhausted incumbents), and answers everything not yet
// started with status "rejected" -- every input line always gets exactly
// one response. See docs/serving.md for the request/response schema.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/core/deadline.hpp"
#include "src/model/solution.hpp"
#include "src/srv/fingerprint.hpp"

namespace sectorpack::srv {

/// One request, parsed from a JSONL line. See docs/serving.md.
struct Request {
  std::size_t index = 0;      // 0-based input line ordinal
  std::string id;             // optional client tag, echoed in the response
  std::string instance_file;  // exactly one of instance_file /
  std::string instance_text;  //   inline instance text is set
  SolverKey solver;
  double time_limit = -1.0;   // per-request budget in seconds; < 0 = none
  /// Set by the engine at admission; queue wait = dequeue time - this.
  std::chrono::steady_clock::time_point admitted_at{};
};

/// Per-request outcome, serialized into the response `status` field.
enum class RequestStatus : std::uint8_t {
  kOk = 0,               // solved to completion
  kBudgetExhausted = 1,  // deadline hit; response carries the incumbent
  kInvalid = 2,          // malformed request / instance / unknown solver
  kRejected = 3,         // never started: drain or global budget exhausted
};

[[nodiscard]] const char* to_string(RequestStatus status) noexcept;

struct BatchConfig {
  unsigned jobs = 0;            // worker count; 0 = hardware_concurrency
  double time_limit = -1.0;     // global wall-clock budget; < 0 = unlimited
  std::size_t cache_entries = 128;  // LRU capacity; 0 disables caching
  std::size_t queue_capacity = 0;   // admission bound; 0 = 4 * jobs
  /// Cooperative interrupt (the CLI points this at its SIGINT flag): once
  /// true, admission stops and the batch drains as described above.
  const std::atomic<bool>* interrupt = nullptr;
  /// Per-request JSONL access log (`--access-log` in the CLI): one line per
  /// request, written by the reorder/emit stage in response order. nullptr
  /// disables it. See docs/serving.md for the line schema.
  std::ostream* access_log = nullptr;
  /// Rolling-window size for the SLO tracker (clamped to >= 1); the window
  /// summary lands in BatchReport::slo_summary and, via obs, in `slo.*`.
  std::size_t slo_window = 512;
};

struct BatchReport {
  std::size_t requests = 0;
  std::size_t ok = 0;
  std::size_t budget_exhausted = 0;
  std::size_t invalid = 0;
  std::size_t rejected = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  bool interrupted = false;  // a drain was triggered before input ran out
  /// Rolling-window SLO rollup at drain (obs::SloTracker::Summary
  /// to_string: window, p50/p95/p99 ms, deadline and cache hit-rates).
  std::string slo_summary;

  [[nodiscard]] std::string to_string() const;
};

/// Run a batch: JSONL requests on `in`, JSONL responses on `out` (one per
/// request, input order). Never throws for per-request problems; throws
/// only on engine-level misuse (e.g. an unwritable output stream).
BatchReport run_batch(std::istream& in, std::ostream& out,
                      const BatchConfig& config);

/// True when `family` names a solver run_solver can dispatch.
[[nodiscard]] bool is_known_solver(const std::string& family) noexcept;

/// Single-instance solver dispatch shared by `sectorpack solve` and the
/// batch engine -- one code path, so batch cache misses are byte-identical
/// to single-shot solves. Throws std::invalid_argument on an unknown
/// family (use is_known_solver to pre-validate).
[[nodiscard]] model::Solution run_solver(const model::Instance& inst,
                                         const SolverKey& key,
                                         const core::SolveOptions& opts);

/// Parse one request line (exposed for tests; run_batch uses it per line).
/// Throws std::runtime_error naming the offending field.
[[nodiscard]] Request parse_request(const std::string& line,
                                    std::size_t index);

}  // namespace sectorpack::srv
