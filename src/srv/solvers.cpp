#include "src/srv/solvers.hpp"

#include <array>
#include <cstddef>

#include "src/knapsack/knapsack.hpp"
#include "src/race/race.hpp"
#include "src/sectors/annealing.hpp"
#include "src/sectors/sectors.hpp"
#include "src/shard/shard.hpp"

namespace sectorpack::srv {

namespace {

model::Solution run_greedy(const model::Instance& inst, const SolverKey&,
                           const core::SolveOptions& opts) {
  sectors::GreedyConfig config;
  config.solve = opts;
  return sectors::solve_greedy(inst, config);
}

model::Solution run_local_search(const model::Instance& inst,
                                 const SolverKey&,
                                 const core::SolveOptions& opts) {
  sectors::LocalSearchConfig config;
  config.solve = opts;
  return sectors::solve_local_search(inst, config);
}

model::Solution run_local_search_seeded(const model::Instance& inst,
                                        const SolverKey&,
                                        const core::SolveOptions& opts,
                                        const model::Solution& seed) {
  sectors::LocalSearchConfig config;
  config.solve = opts;
  return sectors::improve(inst, seed, config);
}

model::Solution run_uniform(const model::Instance& inst, const SolverKey&,
                            const core::SolveOptions& opts) {
  return sectors::solve_uniform_orientations(inst, knapsack::Oracle::exact(),
                                             opts);
}

sectors::AnnealConfig anneal_config(const SolverKey& key,
                                    const core::SolveOptions& opts) {
  sectors::AnnealConfig config;
  config.seed = key.seed;
  config.iterations = static_cast<std::size_t>(key.iterations);
  config.solve = opts;
  return config;
}

model::Solution run_annealing(const model::Instance& inst,
                              const SolverKey& key,
                              const core::SolveOptions& opts) {
  return sectors::solve_annealing(inst, anneal_config(key, opts));
}

model::Solution run_annealing_seeded(const model::Instance& inst,
                                     const SolverKey& key,
                                     const core::SolveOptions& opts,
                                     const model::Solution& seed) {
  return sectors::anneal(inst, seed, anneal_config(key, opts));
}

model::Solution run_exact(const model::Instance& inst, const SolverKey&,
                          const core::SolveOptions& opts) {
  return sectors::solve_exact(inst, /*tuple_limit=*/1u << 20,
                              /*node_limit=*/1u << 26, opts);
}

model::Solution run_shard(const model::Instance& inst, const SolverKey&,
                          const core::SolveOptions& opts) {
  shard::ShardConfig config;
  config.solve = opts;
  return shard::solve(inst, config);
}

model::Solution run_race(const model::Instance& inst, const SolverKey& key,
                         const core::SolveOptions& opts) {
  race::RaceConfig config;
  if (!key.portfolio.empty()) {
    config.portfolio = race::parse_portfolio(key.portfolio);
  }
  config.seed = key.seed;
  config.iterations = key.iterations;
  config.solve = opts;
  return race::solve(inst, config);
}

// The one table. Priorities are the deterministic race tie-break (lower
// wins on equal value) and must stay unique; ordered by each family's
// usual quality when it does finish -- exact's completed answer is
// optimal, local search beats annealing's random walk on most shapes,
// both beat their shared greedy start, shard approximates, uniform is the
// non-adaptive baseline. race itself gets the largest priority; it is not
// portfolio-eligible anyway (parse_portfolio rejects it).
constexpr std::array<SolverFamily, 7> kFamilies{{
    {"greedy", 3, &run_greedy, nullptr},
    {"local-search", 1, &run_local_search, &run_local_search_seeded},
    {"annealing", 2, &run_annealing, &run_annealing_seeded},
    {"uniform", 5, &run_uniform, nullptr},
    {"exact", 0, &run_exact, nullptr},
    {"shard", 4, &run_shard, nullptr},
    {"race", 6, &run_race, nullptr},
}};

}  // namespace

std::span<const SolverFamily> solver_families() noexcept { return kFamilies; }

const SolverFamily* find_solver_family(std::string_view name) noexcept {
  for (const SolverFamily& family : kFamilies) {
    if (name == family.name) return &family;
  }
  return nullptr;
}

std::string solver_family_names(const char* sep) {
  std::string joined;
  for (std::size_t i = 0; i < kFamilies.size(); ++i) {
    if (i != 0) joined += sep;
    joined += kFamilies[i].name;
  }
  return joined;
}

}  // namespace sectorpack::srv
