#include "src/srv/session.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "src/core/deadline.hpp"
#include "src/single/single.hpp"
#include "src/srv/engine.hpp"
#include "src/verify/verify.hpp"

namespace sectorpack::srv {

namespace {

constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

}  // namespace

Session::Session(model::Instance inst, SolverKey key)
    : inst_(std::move(inst)),
      key_(std::move(key)),
      solution_(model::Solution::empty_for(inst_)) {
  const std::size_t n = inst_.num_customers();
  const std::size_t k = inst_.num_antennas();
  sid_.resize(n);
  term_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    sid_[i] = i;
    term_[i] = term_at(i);
  }
  next_sid_ = n;
  band_fp_.assign(k, 0);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      if (inst_.in_range(i, j)) band_fp_[j] += term_[i];
    }
  }
  ensure_antenna_slots();
}

std::uint64_t Session::term_at(std::size_t i) const {
  // Chained splitmix64 over the sid and the exact bit patterns of the four
  // numbers evaluation sees. None of them can be -0.0 here (theta is
  // normalized into [0, 2*pi), radius >= 0 by construction, demand > 0 and
  // value > 0 by validation), so no sign-collapsing is needed.
  std::uint64_t h =
      knapsack::fingerprint_mix(static_cast<std::uint64_t>(sid_[i]));
  h = knapsack::fingerprint_mix(h ^
                                std::bit_cast<std::uint64_t>(inst_.theta(i)));
  h = knapsack::fingerprint_mix(h ^
                                std::bit_cast<std::uint64_t>(inst_.radius(i)));
  h = knapsack::fingerprint_mix(h ^
                                std::bit_cast<std::uint64_t>(inst_.demand(i)));
  h = knapsack::fingerprint_mix(h ^
                                std::bit_cast<std::uint64_t>(inst_.value(i)));
  return h;
}

std::size_t Session::index_of_sid(std::size_t sid) const {
  const auto it = std::lower_bound(sid_.begin(), sid_.end(), sid);
  if (it == sid_.end() || *it != sid) return kNoIndex;
  return static_cast<std::size_t>(it - sid_.begin());
}

void Session::ensure_antenna_slots() {
  const std::size_t k = inst_.num_antennas();
  while (caches_.size() < k) {
    caches_.push_back(std::make_unique<knapsack::OracleCache>());
  }
  if (memo_.size() < k) memo_.resize(k);
}

ResolveStats Session::solve_initial(const core::SolveOptions& opts) {
  return resolve(opts);
}

ResolveStats Session::customer_add(const model::Customer& c,
                                   const core::SolveOptions& opts) {
  const std::size_t i = inst_.add_customer(c);  // throws before mutating
  sid_.push_back(next_sid_++);
  term_.push_back(term_at(i));
  const std::size_t k = inst_.num_antennas();
  for (std::size_t j = 0; j < k; ++j) {
    if (inst_.in_range(i, j)) band_fp_[j] += term_[i];
  }
  ++deltas_;
  return resolve(opts);
}

ResolveStats Session::customer_remove(std::size_t customer,
                                      const core::SolveOptions& opts) {
  if (customer >= inst_.num_customers()) {
    throw std::out_of_range("customer_remove: index out of range");
  }
  // Radial membership must be read before the records shift.
  const std::uint64_t term = term_[customer];
  const std::size_t k = inst_.num_antennas();
  std::vector<bool> in_band(k, false);
  for (std::size_t j = 0; j < k; ++j) {
    in_band[j] = inst_.in_range(customer, j);
  }
  inst_.remove_customer(customer);
  sid_.erase(sid_.begin() + static_cast<std::ptrdiff_t>(customer));
  term_.erase(term_.begin() + static_cast<std::ptrdiff_t>(customer));
  for (std::size_t j = 0; j < k; ++j) {
    if (in_band[j]) band_fp_[j] -= term;
  }
  ++deltas_;
  return resolve(opts);
}

ResolveStats Session::demand_set(std::size_t customer, double demand,
                                 const core::SolveOptions& opts) {
  if (customer >= inst_.num_customers()) {
    throw std::out_of_range("demand_set: index out of range");
  }
  const std::uint64_t old_term = term_[customer];
  inst_.set_demand(customer, demand);  // throws before mutating
  const std::uint64_t new_term = term_at(customer);
  term_[customer] = new_term;
  const std::size_t k = inst_.num_antennas();
  for (std::size_t j = 0; j < k; ++j) {
    // Radial membership is position-only, so it is unchanged; the band
    // fingerprint swaps the one term.
    if (inst_.in_range(customer, j)) {
      band_fp_[j] += new_term;
      band_fp_[j] -= old_term;
    }
  }
  // The sid did not change, so every OracleCache entry whose window
  // contains this customer still matches its member-set key while its
  // stored packing reflects the OLD demand -- those hits would be wrong.
  // The oracle caches key by sid alone and must go; the pick memos key by
  // the per-customer terms (which embed the demand) and stay sound.
  caches_.clear();
  ensure_antenna_slots();
  ++deltas_;
  return resolve(opts);
}

ResolveStats Session::antenna_add(const model::AntennaSpec& spec,
                                  const core::SolveOptions& opts) {
  const std::size_t j = inst_.add_antenna(spec);  // throws before mutating
  std::uint64_t fp = 0;
  const std::size_t n = inst_.num_customers();
  for (std::size_t i = 0; i < n; ++i) {
    if (inst_.in_range(i, j)) fp += term_[i];
  }
  band_fp_.push_back(fp);
  // Existing caches/memos stay: each slot is a pure function of its own
  // antenna's unchanged spec. (If the fleet was identical and the new
  // antenna breaks that, slot 0's entries still describe antenna 0's spec,
  // which is the only antenna the non-identical replay reads slot 0 for.)
  ensure_antenna_slots();
  ++deltas_;
  return resolve(opts);
}

ResolveStats Session::resolve(const core::SolveOptions& opts) {
  if (key_.family == "greedy") return replay_greedy(opts);
  // Non-greedy families (local search, annealing, ...) mutate orientations
  // non-monotonically; there is no round structure to memoize. Fall back to
  // the shared dispatch -- trivially byte-identical to a fresh solve.
  ResolveStats stats;
  solution_ = run_solver(inst_, key_, opts);
  return stats;
}

ResolveStats Session::replay_greedy(const core::SolveOptions& opts) {
  ResolveStats stats;
  stats.incremental = true;
  const std::size_t n = inst_.num_customers();
  const std::size_t k = inst_.num_antennas();

  model::Solution sol = model::Solution::empty_for(inst_);
  std::vector<bool> served(n, false);
  std::vector<bool> used(k, false);
  const bool identical = inst_.antennas_identical();

  // Unserved-in-band fingerprint per antenna, rolled forward as rounds
  // commit; this is the memo key for an (antenna, round) evaluation.
  std::vector<std::uint64_t> unserved_fp = band_fp_;

  struct Pick {
    double value = 0.0;
    std::size_t j = 0;
    single::WindowChoice choice;
  };

  // Memo hit: replay the stored verdict, mapping sids back to current
  // instance indices. A sid that no longer resolves, or resolves to a
  // served customer, means the 64-bit key collided with a different member
  // set -- drop the entry and report a miss so the sweep recomputes.
  const auto try_memo = [&](std::size_t slot, std::uint64_t key,
                            std::size_t j, Pick* out) {
    auto& memo = memo_[slot];
    const auto it = memo.find(key);
    if (it == memo.end()) return false;
    const MemoPick& m = it->second;
    Pick pick;
    pick.j = j;
    pick.value = m.value;
    pick.choice.alpha = m.alpha;
    pick.choice.value = m.value;
    pick.choice.chosen.reserve(m.chosen_sids.size());
    for (const std::size_t sid : m.chosen_sids) {
      const std::size_t i = index_of_sid(sid);
      if (i == kNoIndex || served[i]) {
        memo.erase(it);
        return false;
      }
      pick.choice.chosen.push_back(i);
    }
    *out = std::move(pick);
    return true;
  };

  // Fresh evaluation, mirroring sectors::solve_greedy's `evaluate` exactly
  // (same filtered lists, same window sweep, serial) except that the stable
  // ids handed to the sweep are session sids rather than instance indices
  // -- ids only key the OracleCache and the id<->local remapping, never the
  // output bytes, and sids survive index shifts across deltas.
  const auto evaluate = [&](std::size_t j, std::size_t slot,
                            std::uint64_t key) {
    Pick pick;
    pick.j = j;
    std::vector<std::size_t> in_band;
    inst_.in_range_customers(j, in_band);
    std::vector<double> thetas;
    std::vector<double> values;
    std::vector<double> demands;
    std::vector<std::size_t> index;
    std::vector<std::size_t> ids;
    for (const std::size_t i : in_band) {
      if (!served[i]) {
        thetas.push_back(inst_.theta(i));
        values.push_back(inst_.value(i));
        demands.push_back(inst_.demand(i));
        index.push_back(i);
        ids.push_back(sid_[i]);
      }
    }
    pick.choice = single::best_window_weighted(
        thetas, values, demands, inst_.antenna(j).rho,
        inst_.antenna(j).capacity, oracle_, /*parallel=*/false, nullptr,
        caches_[slot].get(), ids, opts.deadline);
    pick.value = pick.choice.value;
    // Never memoize a deadline-truncated sweep: its verdict depends on
    // where the clock ran out, not on the member set alone.
    if (pick.choice.complete && memo_[slot].size() < kMemoMaxEntries) {
      MemoPick m;
      m.value = pick.choice.value;
      m.alpha = pick.choice.alpha;
      m.chosen_sids.reserve(pick.choice.chosen.size());
      for (const std::size_t c : pick.choice.chosen) {
        m.chosen_sids.push_back(ids[c]);
      }
      memo_[slot].emplace(key, std::move(m));
    }
    for (std::size_t& c : pick.choice.chosen) c = index[c];
    return pick;
  };

  const auto round_eval = [&](std::size_t j, Pick* out) {
    const std::size_t slot = identical ? 0 : j;
    const std::uint64_t key = unserved_fp[j];
    ++stats.evals;
    if (try_memo(slot, key, j, out)) {
      ++stats.memo_hits;
      return;
    }
    ++stats.fresh_evals;
    *out = evaluate(j, slot, key);
  };

  // Round loop: byte-for-byte the control flow of sectors::solve_greedy
  // (serial branch; the replay never window-parallelizes, matching
  // GreedyConfig's defaults as dispatched by run_solver).
  const core::Deadline& deadline = opts.deadline;
  for (std::size_t round = 0; round < k; ++round) {
    Pick best;
    bool have_best = false;

    if (identical) {
      for (std::size_t j = 0; j < k; ++j) {
        if (used[j]) continue;
        round_eval(j, &best);
        have_best = best.value > 0.0;
        break;
      }
    } else {
      for (std::size_t j = 0; j < k; ++j) {
        if (used[j]) continue;
        Pick pick;
        round_eval(j, &pick);
        if (pick.value > best.value) {
          best = std::move(pick);
          have_best = true;
        }
      }
    }

    if (have_best) {
      used[best.j] = true;
      sol.alpha[best.j] = best.choice.alpha;
      for (const std::size_t i : best.choice.chosen) {
        served[i] = true;
        sol.assign[i] = static_cast<std::int32_t>(best.j);
      }
      // Roll the committed customers out of every antenna's unserved-band
      // fingerprint (they can no longer appear in a later round's window).
      for (std::size_t j = 0; j < k; ++j) {
        for (const std::size_t i : best.choice.chosen) {
          if (inst_.in_range(i, j)) unserved_fp[j] -= term_[i];
        }
      }
    }
    if (deadline.expired()) {
      sol.status = model::SolveStatus::kBudgetExhausted;
      core::note_expired("srv.session");
      break;
    }
    if (!have_best) break;
  }

  // Runtime backstop against 64-bit fingerprint collisions: an aliased memo
  // or cache hit that slipped past try_memo's liveness check would produce
  // an infeasible assignment (double-serve, capacity breach). Verify is
  // O(n + k) -- noise next to a solve -- so every replay pays it; on
  // failure the session drops all derived state and answers from scratch.
  const verify::VerifyReport report = verify::verify_solution(inst_, sol);
  if (!report.ok) {
    caches_.clear();
    memo_.clear();
    ensure_antenna_slots();
    solution_ = run_solver(inst_, key_, opts);
    ResolveStats fallback;
    return fallback;
  }

  solution_ = std::move(sol);
  stats.dirty_ratio =
      stats.evals > 0 ? static_cast<double>(stats.fresh_evals) /
                            static_cast<double>(stats.evals)
                      : 0.0;
  return stats;
}

std::string SessionStore::create(model::Instance inst, SolverKey key) {
  std::string id = "s" + std::to_string(next_id_++);
  sessions_.emplace(id,
                    std::make_unique<Session>(std::move(inst), std::move(key)));
  return id;
}

Session* SessionStore::find(const std::string& id) {
  const auto it = sessions_.find(id);
  return it != sessions_.end() ? it->second.get() : nullptr;
}

bool SessionStore::close(const std::string& id) {
  return sessions_.erase(id) > 0;
}

std::vector<std::string> SessionStore::ids() const {
  // std::map orders lexicographically ("s10" < "s2"); creation order is by
  // numeric suffix, so sort on that.
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& [id, _] : sessions_) out.push_back(id);
  std::sort(out.begin(), out.end(), [](const std::string& a,
                                       const std::string& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  return out;
}

}  // namespace sectorpack::srv
