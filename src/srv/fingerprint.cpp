#include "src/srv/fingerprint.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <numeric>

#include "src/model/instance.hpp"

namespace sectorpack::srv {

namespace {

// splitmix64 finalizer: the standard full-avalanche 64-bit mixer.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Hash a double by bit pattern, with -0.0 collapsed onto +0.0 so the two
// presentations of zero (which compare equal and are interchangeable in
// every solver) share a fingerprint. Integer compare, no float-eq.
std::uint64_t double_bits(double v) noexcept {
  std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  constexpr std::uint64_t kNegativeZero = 0x8000000000000000ULL;
  if (bits == kNegativeZero) bits = 0;
  return bits;
}

// Order-dependent sequence hash (fed with *sorted* tuples, so the overall
// fingerprint is order-independent in the original instance).
class SeqHash {
 public:
  explicit SeqHash(std::uint64_t seed) : h_(mix64(seed)) {}

  void update(std::uint64_t v) noexcept { h_ = mix64(h_ ^ v) + 0x1D8E4E27C47D124FULL; }
  void update_double(double v) noexcept { update(double_bits(v)); }
  void update_bytes(const std::string& s) noexcept {
    update(s.size());
    std::uint64_t acc = 0;
    int n = 0;
    for (const char c : s) {
      acc = (acc << 8) | static_cast<unsigned char>(c);
      if (++n == 8) {
        update(acc);
        acc = 0;
        n = 0;
      }
    }
    if (n > 0) update(acc);
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return mix64(h_); }

 private:
  std::uint64_t h_;
};

// The full numeric tuple of one customer in canonical-comparison form
// (resolved value, signed zeros collapsed at hash time; the sort compares
// raw doubles, which orders -0.0 and +0.0 as equal -- a tie, and ties are
// interchangeable by construction).
struct CustomerKey {
  double x, y, demand, value;
  friend bool operator<(const CustomerKey& a, const CustomerKey& b) {
    if (a.x != b.x) return a.x < b.x;
    if (a.y != b.y) return a.y < b.y;
    if (a.demand != b.demand) return a.demand < b.demand;
    return a.value < b.value;
  }
};

struct AntennaKey {
  double rho, range, capacity, min_range;
  friend bool operator<(const AntennaKey& a, const AntennaKey& b) {
    if (a.rho != b.rho) return a.rho < b.rho;
    if (a.range != b.range) return a.range < b.range;
    if (a.capacity != b.capacity) return a.capacity < b.capacity;
    return a.min_range < b.min_range;
  }
};

}  // namespace

std::string Fingerprint::to_hex() const {
  static const char* kHex = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = kHex[(hi >> (4 * i)) & 0xF];
    out[static_cast<std::size_t>(31 - i)] = kHex[(lo >> (4 * i)) & 0xF];
  }
  return out;
}

CanonicalInstance canonicalize(const model::Instance& inst,
                               const SolverKey& key) {
  const std::size_t n = inst.num_customers();
  const std::size_t k = inst.num_antennas();

  std::vector<CustomerKey> ckeys(n);
  for (std::size_t i = 0; i < n; ++i) {
    const model::Customer& c = inst.customer(i);
    // Resolved value (kValueIsDemand -> demand), so a v1 file and a v2 file
    // spelling the default explicitly canonicalize identically.
    ckeys[i] = {c.pos.x, c.pos.y, c.demand, inst.value(i)};
  }
  std::vector<AntennaKey> akeys(k);
  for (std::size_t j = 0; j < k; ++j) {
    const model::AntennaSpec& a = inst.antenna(j);
    akeys[j] = {a.rho, a.range, a.capacity, a.min_range};
  }

  CanonicalInstance canon;
  canon.customer_order.resize(n);
  std::iota(canon.customer_order.begin(), canon.customer_order.end(), 0u);
  std::sort(canon.customer_order.begin(), canon.customer_order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return ckeys[a] < ckeys[b];
            });
  canon.antenna_order.resize(k);
  std::iota(canon.antenna_order.begin(), canon.antenna_order.end(), 0u);
  std::sort(canon.antenna_order.begin(), canon.antenna_order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return akeys[a] < akeys[b];
            });

  // Two independently seeded sequence hashes over identical input = one
  // 128-bit fingerprint.
  std::array<SeqHash, 2> h{SeqHash{0x5EC7095AC4ULL}, SeqHash{0xBA7C4C0DEULL}};
  for (SeqHash& hash : h) {
    hash.update(n);
    for (const std::uint32_t i : canon.customer_order) {
      hash.update_double(ckeys[i].x);
      hash.update_double(ckeys[i].y);
      hash.update_double(ckeys[i].demand);
      hash.update_double(ckeys[i].value);
    }
    hash.update(k);
    for (const std::uint32_t j : canon.antenna_order) {
      hash.update_double(akeys[j].rho);
      hash.update_double(akeys[j].range);
      hash.update_double(akeys[j].capacity);
      hash.update_double(akeys[j].min_range);
    }
    hash.update_bytes(key.family);
    hash.update(key.seed);
    hash.update(key.iterations);
    hash.update_bytes(key.portfolio);
  }
  canon.fingerprint = {h[0].digest(), h[1].digest()};
  return canon;
}

model::Solution to_canonical(const CanonicalInstance& canon,
                             const model::Solution& sol) {
  const std::size_t n = canon.customer_order.size();
  const std::size_t k = canon.antenna_order.size();
  // antenna_rank[j] = canonical position of instance antenna j.
  std::vector<std::int32_t> antenna_rank(k, model::kUnserved);
  for (std::size_t r = 0; r < k; ++r) {
    antenna_rank[canon.antenna_order[r]] = static_cast<std::int32_t>(r);
  }
  model::Solution out;
  out.status = sol.status;
  out.alpha.resize(k);
  for (std::size_t r = 0; r < k; ++r) {
    out.alpha[r] = sol.alpha[canon.antenna_order[r]];
  }
  out.assign.resize(n, model::kUnserved);
  for (std::size_t c = 0; c < n; ++c) {
    const std::int32_t a = sol.assign[canon.customer_order[c]];
    out.assign[c] = a == model::kUnserved
                        ? model::kUnserved
                        : antenna_rank[static_cast<std::size_t>(a)];
  }
  return out;
}

model::Solution from_canonical(const CanonicalInstance& canon,
                               const model::Solution& canonical) {
  const std::size_t n = canon.customer_order.size();
  const std::size_t k = canon.antenna_order.size();
  model::Solution out;
  out.status = canonical.status;
  out.alpha.resize(k);
  for (std::size_t r = 0; r < k; ++r) {
    out.alpha[canon.antenna_order[r]] = canonical.alpha[r];
  }
  out.assign.resize(n, model::kUnserved);
  for (std::size_t c = 0; c < n; ++c) {
    const std::int32_t rank = canonical.assign[c];
    out.assign[canon.customer_order[c]] =
        rank == model::kUnserved
            ? model::kUnserved
            : static_cast<std::int32_t>(
                  canon.antenna_order[static_cast<std::size_t>(rank)]);
  }
  return out;
}

}  // namespace sectorpack::srv
