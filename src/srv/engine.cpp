#include "src/srv/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/bench_util/timer.hpp"
#include "src/core/sync.hpp"
#include "src/bounds/upper.hpp"
#include "src/model/io.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/slo.hpp"
#include "src/obs/trace.hpp"
#include "src/par/bounded_queue.hpp"
#include "src/par/thread_pool.hpp"
#include "src/race/race.hpp"
#include "src/srv/cache.hpp"
#include "src/srv/jsonl.hpp"
#include "src/srv/solvers.hpp"
#include "src/verify/verify.hpp"

namespace sectorpack::srv {

namespace {

// Largest double that still identifies one integer exactly; JSON carries
// seeds/iterations as doubles, and an imprecise integer field is a typo,
// not a request.
constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53

// Reject absurd per-request budgets at parse time. Anything above ~3 years
// is indistinguishable from "no limit" but would historically overflow the
// deadline's duration cast (Deadline::after now clamps too -- this is the
// protocol-level bound, that is the defense in depth).
constexpr double kMaxTimeLimitSeconds = 1e8;

std::uint64_t require_integer_field(const char* name, double value) {
  if (!(value >= 0.0) || value > kMaxExactInteger ||
      std::floor(value) != value) {
    throw std::runtime_error(std::string("field '") + name +
                             "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(value);
}

const JsonValue* find_field(const JsonObject& object, const char* name) {
  const auto it = object.find(name);
  return it == object.end() ? nullptr : &it->second;
}

std::string require_string_field(const JsonObject& object, const char* name) {
  const JsonValue* v = find_field(object, name);
  if (v == nullptr) return {};
  if (v->kind != JsonValue::Kind::kString) {
    throw std::runtime_error(std::string("field '") + name +
                             "' must be a string");
  }
  return v->string;
}

}  // namespace

const char* to_string(RequestStatus status) noexcept {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kBudgetExhausted: return "budget_exhausted";
    case RequestStatus::kInvalid: return "invalid";
    case RequestStatus::kRejected: return "rejected";
  }
  return "unknown";
}

bool is_known_solver(const std::string& family) noexcept {
  return find_solver_family(family) != nullptr;
}

model::Solution run_solver(const model::Instance& inst, const SolverKey& key,
                           const core::SolveOptions& opts) {
  const SolverFamily* family = find_solver_family(key.family);
  if (family == nullptr) {
    throw std::invalid_argument("unknown solver: " + key.family);
  }
  return family->run(inst, key, opts);
}

Request parse_request(const std::string& line, std::size_t index) {
  const JsonObject object = parse_flat_object(line);
  for (const auto& [key, value] : object) {
    if (key != "id" && key != "instance" && key != "instance_file" &&
        key != "solver" && key != "seed" && key != "iterations" &&
        key != "portfolio" && key != "time_limit") {
      throw std::runtime_error("unknown request field '" + key + "'");
    }
  }

  Request req;
  req.index = index;
  req.id = require_string_field(object, "id");
  req.instance_file = require_string_field(object, "instance_file");
  req.instance_text = require_string_field(object, "instance");
  if (req.instance_file.empty() == req.instance_text.empty()) {
    throw std::runtime_error(
        "exactly one of 'instance_file' and 'instance' is required");
  }

  const std::string family = require_string_field(object, "solver");
  if (!family.empty()) req.solver.family = family;
  if (!is_known_solver(req.solver.family)) {
    throw std::runtime_error("unknown solver '" + req.solver.family + "'");
  }

  if (const JsonValue* seed = find_field(object, "seed")) {
    if (seed->kind != JsonValue::Kind::kNumber) {
      throw std::runtime_error("field 'seed' must be a number");
    }
    req.solver.seed = require_integer_field("seed", seed->number);
  }
  if (const JsonValue* iters = find_field(object, "iterations")) {
    if (iters->kind != JsonValue::Kind::kNumber) {
      throw std::runtime_error("field 'iterations' must be a number");
    }
    req.solver.iterations = require_integer_field("iterations", iters->number);
  }
  if (const JsonValue* portfolio = find_field(object, "portfolio")) {
    if (portfolio->kind != JsonValue::Kind::kString) {
      throw std::runtime_error("field 'portfolio' must be a string");
    }
    if (req.solver.family != "race") {
      throw std::runtime_error(
          "field 'portfolio' requires solver 'race'");
    }
    // Validate at parse time so a bad portfolio is an invalid request, not
    // a per-solve failure after the instance loaded.
    (void)race::parse_portfolio(portfolio->string);
    req.solver.portfolio = portfolio->string;
  }
  if (const JsonValue* limit = find_field(object, "time_limit")) {
    if (limit->kind != JsonValue::Kind::kNumber || !(limit->number >= 0.0) ||
        std::isnan(limit->number)) {
      throw std::runtime_error("field 'time_limit' must be a number >= 0");
    }
    if (limit->number > kMaxTimeLimitSeconds) {
      throw std::runtime_error(
          "field 'time_limit' out of range (max 1e8 seconds)");
    }
    req.time_limit = limit->number;
  }
  return req;
}

std::string BatchReport::to_string() const {
  std::ostringstream os;
  os << "requests=" << requests << " ok=" << ok
     << " budget_exhausted=" << budget_exhausted << " invalid=" << invalid
     << " rejected=" << rejected << " cache_hit=" << cache_hits
     << " cache_miss=" << cache_misses << " cache_evicted=" << cache_evictions;
  if (interrupted) os << " interrupted=yes";
  if (!slo_summary.empty()) os << " slo[" << slo_summary << "]";
  return os.str();
}

namespace {

/// Everything one run_batch call needs; workers hold a pointer into this,
/// and its lifetime brackets the ThreadPool that runs them.
class Engine {
 public:
  Engine(std::ostream& out, const BatchConfig& config)
      : out_(out),
        config_(config),
        global_(config.time_limit >= 0.0 ? core::Deadline::after(config.time_limit)
                                         : core::Deadline::never()),
        cache_(config.cache_entries),
        slo_(config.slo_window),
        c_ok_(obs::counter("srv.requests.ok")),
        c_budget_(obs::counter("srv.requests.budget_exhausted")),
        c_invalid_(obs::counter("srv.requests.invalid")),
        c_rejected_(obs::counter("srv.requests.rejected")),
        c_cache_mismatch_(obs::counter("srv.cache.mismatch")),
        g_queue_depth_(obs::gauge("srv.queue.depth")),
        g_inflight_(obs::gauge("srv.inflight")),
        h_request_ms_(obs::hdr_histogram("srv.request_ms")),
        h_queue_us_(obs::hdr_histogram("srv.queue_wait_us")),
        h_gap_(obs::hdr_histogram("quality.gap_permille")) {
    // Pre-register the per-family quality counters so the worker hot path
    // never takes the registration mutex. Driven by the solver registry so
    // a new family gets its counters for free.
    for (const SolverFamily& family : solver_families()) {
      quality_.emplace(
          family.name,
          QualityCounters{
              obs::counter(std::string("quality.") + family.name + ".solves"),
              obs::counter(std::string("quality.") + family.name +
                           ".gap_permille_sum")});
    }
  }

  BatchReport run(std::istream& in) {
    {
      par::ThreadPool pool(config_.jobs);
      const unsigned workers = pool.size();
      const std::size_t capacity = config_.queue_capacity != 0
                                       ? config_.queue_capacity
                                       : std::size_t{4} * workers;
      queue_ = std::make_unique<par::BoundedQueue<Request>>(capacity);
      inflight_.assign(workers, core::Deadline{});
      // The reorder window bounds completed-but-unemitted responses, so a
      // single slow request cannot make the output buffer grow with the
      // whole input.
      window_ = capacity + std::size_t{2} * workers + 16;

      for (unsigned w = 0; w < workers; ++w) {
        pool.submit([this, w] { pump(w); });
      }

      std::string line;
      while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) {
          continue;  // blank line: not a request, no response
        }
        const std::size_t index = total_++;
        maybe_trigger_drain();
        if (draining()) {
          complete_unsolved(index, /*id=*/"", RequestStatus::kRejected,
                            drain_reason_);
          continue;
        }
        Request req;
        try {
          req = parse_request(line, index);
        } catch (const std::exception& e) {
          complete_unsolved(index, /*id=*/"", RequestStatus::kInvalid,
                            e.what());
          continue;
        }
        admit(std::move(req));
      }

      queue_->close();
      // ThreadPool's destructor drains and joins the pumps; after this
      // block every admitted request has completed.
    }
    flush_ready();
    // Publish the rolling-window view into `slo.*` gauges so `--stats json`
    // and the exporter's final tick carry it alongside the run totals.
    slo_.publish();
    if (config_.access_log != nullptr) config_.access_log->flush();

    BatchReport report;
    report.requests = total_;
    report.ok = n_ok_;
    report.budget_exhausted = n_budget_;
    report.invalid = n_invalid_;
    report.rejected = n_rejected_;
    report.cache_hits = cache_.hits();
    report.cache_misses = cache_.misses();
    report.cache_evictions = cache_.evictions();
    report.interrupted = draining();
    report.slo_summary = slo_.summary().to_string();
    return report;
  }

 private:
  // ---------------------------------------------------------------- admission

  void admit(Request req) {
    // Keep the reorder window bounded before handing out new work.
    {
      core::UniqueLock lock(done_mu_);
      while (req.index - next_emit_ >= window_) {
        flush_ready_locked();
        // Predicate-less timed wait on purpose: the enclosing while IS the
        // re-check, and the 50ms bound keeps the window draining even on a
        // missed notify (see core::CondVar).
        done_cv_.wait_for(lock, std::chrono::milliseconds(50));
        // No drain check needed: a drain cancels in-flight deadlines, so
        // the window always drains forward.
      }
    }
    flush_ready();

    const std::size_t index = req.index;
    const std::string id = req.id;
    req.admitted_at = std::chrono::steady_clock::now();
    bool pushed = false;
    while (!pushed && !draining()) {
      Request& slot = req;
      pushed = queue_->try_push_for(slot, std::chrono::milliseconds(50));
      g_queue_depth_.set(static_cast<double>(queue_->size()));
      if (!pushed) maybe_trigger_drain();
    }
    if (!pushed) {
      complete_unsolved(index, id, RequestStatus::kRejected, drain_reason_);
    }
  }

  void maybe_trigger_drain() {
    if (draining()) return;
    // sp-sync: relaxed poll of the caller's interrupt flag; detection may
    // lag by one 50ms admission round, which drain tolerates.
    if (config_.interrupt != nullptr &&
        config_.interrupt->load(std::memory_order_relaxed)) {
      trigger_drain("batch draining (interrupted)", /*interrupted=*/true);
    } else if (global_.expired()) {
      trigger_drain("global time limit exhausted before start",
                    /*interrupted=*/false);
    }
  }

  void trigger_drain(const char* reason, bool interrupted) {
    {
      const core::LockGuard lock(inflight_mu_);
      // sp-sync: relaxed read is exact under inflight_mu_ -- every
      // draining_ store happens inside this critical section.
      if (draining_.load(std::memory_order_relaxed)) return;
      drain_reason_ = reason;
      if (interrupted) core::note_expired("srv.batch");
      draining_.store(true, std::memory_order_release);
      // In-flight solves finish promptly as feasible budget-exhausted
      // incumbents; queued requests are rejected at dequeue time.
      for (const core::Deadline& d : inflight_) d.cancel();
    }
    global_.cancel();
  }

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  // ---------------------------------------------------------------- workers

  void pump(unsigned slot) {
    Request req;
    while (queue_->pop(req)) {
      g_queue_depth_.set(static_cast<double>(queue_->size()));
      g_inflight_.set(static_cast<double>(
          // sp-sync: relaxed gauge bookkeeping; momentary skew only
          // blurs the srv.inflight gauge, never control flow.
          1 + inflight_count_.fetch_add(1, std::memory_order_relaxed)));
      const std::size_t index = req.index;
      const std::string id = req.id;
      try {
        process(std::move(req), slot);
      } catch (const std::exception& e) {
        // Defensive: process() handles per-request errors itself; anything
        // escaping is an engine bug surfaced as an invalid response rather
        // than a dead worker (ThreadPool tasks must not throw).
        complete_unsolved(index, id, RequestStatus::kInvalid,
                          std::string("internal error: ") + e.what());
      }
      g_inflight_.set(static_cast<double>(
          // sp-sync: as above (gauge bookkeeping).
          inflight_count_.fetch_sub(1, std::memory_order_relaxed) - 1));
    }
  }

  void process(Request req, unsigned slot) {
    const obs::ScopedSpan span("srv.request");
    const bench_util::Timer timer;
    // Queue wait: admission (admit() stamped the request) to dequeue. A
    // default-constructed stamp means the request never went through
    // admit(), so the wait is unknown and reported as zero.
    const double queue_us =
        req.admitted_at.time_since_epoch().count() == 0
            ? 0.0
            : std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - req.admitted_at)
                  .count();
    h_queue_us_.observe(queue_us);

    if (draining()) {
      complete_unsolved(req.index, req.id, RequestStatus::kRejected,
                        drain_reason_, queue_us);
      return;
    }

    model::Instance inst;
    try {
      inst = req.instance_file.empty()
                 ? model::instance_from_string(req.instance_text)
                 : model::read_instance_file(req.instance_file);
    } catch (const std::exception& e) {
      complete_unsolved(req.index, req.id, RequestStatus::kInvalid, e.what(),
                        queue_us);
      return;
    }

    const CanonicalInstance canon = canonicalize(inst, req.solver);

    if (config_.cache_entries > 0) {
      if (std::optional<model::Solution> cached =
              cache_.lookup(canon.fingerprint)) {
        // Shape guard against a fingerprint collision, then the full
        // invariant check against *this* request's instance: a projected
        // hit must stand on its own, exactly like a fresh solve.
        if (cached->alpha.size() == inst.num_antennas() &&
            cached->assign.size() == inst.num_customers()) {
          model::Solution sol = from_canonical(canon, *cached);
          if (verify::verify_solution(inst, sol).ok) {
            verify::debug_postcondition(inst, sol, "srv::batch(cache-hit)");
            complete_solved(req, inst, canon, std::move(sol),
                            /*cache_hit=*/true, timer.elapsed_ms(), queue_us);
            return;
          }
        }
        // Collision or projection mismatch: never serve it; solve fresh.
        c_cache_mismatch_.inc();
      }
    }

    // Per-request budget, clamped under the remaining global budget, and
    // always cancellable so a drain can interrupt this solve. Register the
    // deadline before solving; if a drain already started, cancel it
    // ourselves (the drain's cancel sweep may have run before we
    // registered).
    const core::Deadline deadline =
        core::Deadline::after_at_most(req.time_limit, global_);
    {
      const core::LockGuard lock(inflight_mu_);
      inflight_[slot] = deadline;
      // sp-sync: relaxed read is exact under inflight_mu_ (stores happen
      // under it in trigger_drain).
      if (draining_.load(std::memory_order_relaxed)) deadline.cancel();
    }

    model::Solution sol;
    std::string error;
    try {
      sol = run_solver(inst, req.solver, core::SolveOptions{deadline});
    } catch (const std::exception& e) {
      error = e.what();  // e.g. exact-solver tuple-space overflow
    }
    {
      const core::LockGuard lock(inflight_mu_);
      inflight_[slot] = core::Deadline{};
    }
    if (!error.empty()) {
      complete_unsolved(req.index, req.id, RequestStatus::kInvalid, error,
                        queue_us);
      return;
    }

    verify::debug_postcondition(inst, sol, "srv::batch(fresh)");
    if (config_.cache_entries > 0 &&
        sol.status == model::SolveStatus::kComplete) {
      cache_.insert(canon.fingerprint, to_canonical(canon, sol));
    }
    complete_solved(req, inst, canon, std::move(sol), /*cache_hit=*/false,
                    timer.elapsed_ms(), queue_us);
  }

  // --------------------------------------------------------------- responses

  void complete_solved(const Request& req, const model::Instance& inst,
                       const CanonicalInstance& canon, model::Solution sol,
                       bool cache_hit, double elapsed_ms, double queue_us) {
    const RequestStatus status =
        sol.status == model::SolveStatus::kComplete
            ? RequestStatus::kOk
            : RequestStatus::kBudgetExhausted;
    const double served = served_value(inst, sol);
    std::ostringstream os;
    os << "{\"index\":" << req.index;
    if (!req.id.empty()) os << ",\"id\":\"" << obs::json_escape(req.id) << "\"";
    os << ",\"status\":\"" << to_string(status) << "\""
       << ",\"solver\":\"" << obs::json_escape(req.solver.family) << "\""
       << ",\"cache\":\"" << (cache_hit ? "hit" : "miss") << "\""
       << ",\"fingerprint\":\"" << canon.fingerprint.to_hex() << "\""
       << ",\"served_value\":" << obs::json_number(served)
       << ",\"solve_ms\":" << obs::json_number(elapsed_ms)
       << ",\"solution\":\"" << obs::json_escape(model::to_string(sol))
       << "\"}";
    h_request_ms_.observe(elapsed_ms);
    // Cache hits are recorded as their own kind so their near-zero
    // latencies never dilute the solve percentiles (docs/observability.md
    // "SLO tracker" documents the semantics).
    slo_.record(elapsed_ms, /*deadline_ok=*/status == RequestStatus::kOk,
                cache_hit ? obs::SloKind::kCacheHit : obs::SloKind::kSolve);

    if (obs::enabled()) {
      // Solution quality against the cheap demand/capacity bound, in
      // permille of the bound (0 = matched the bound, 1000 = served
      // nothing). The clamp guards rounding noise when served == bound.
      const double bound = bounds::trivial_bound(inst);
      const double gap =
          bound > 0.0
              ? std::clamp(1000.0 * (bound - served) / bound, 0.0, 1000.0)
              : 0.0;
      h_gap_.observe(gap);
      const auto it = quality_.find(req.solver.family);
      if (it != quality_.end()) {
        it->second.solves.inc();
        it->second.gap_sum.add(
            static_cast<std::uint64_t>(std::llround(gap)));
      }
    }

    std::string access;
    if (config_.access_log != nullptr) {
      std::ostringstream al;
      al << "{\"index\":" << req.index << ",\"id\":\""
         << obs::json_escape(req.id) << "\""
         << ",\"status\":\"" << to_string(status) << "\""
         << ",\"solver\":\"" << obs::json_escape(req.solver.family) << "\""
         << ",\"cache\":\"" << (cache_hit ? "hit" : "miss") << "\""
         << ",\"fingerprint\":\"" << canon.fingerprint.to_hex() << "\""
         << ",\"queue_us\":" << obs::json_number(queue_us)
         << ",\"solve_us\":" << obs::json_number(elapsed_ms * 1000.0)
         << ",\"deadline_budget_ms\":"
         << (req.time_limit >= 0.0
                 ? obs::json_number(req.time_limit * 1000.0)
                 : std::string("null"))
         << ",\"deadline_used_ms\":" << obs::json_number(elapsed_ms) << "}";
      access = al.str();
    }
    complete(req.index, status, os.str(), std::move(access));
  }

  void complete_unsolved(std::size_t index, const std::string& id,
                         RequestStatus status, const std::string& error,
                         double queue_us = 0.0) {
    // A rejected request is a deadline miss from the client's point of view
    // -- it asked and got no answer -- so it must drag deadline_hit_rate
    // down. Invalid requests are client errors, not service failures, and
    // are deliberately not recorded.
    if (status == RequestStatus::kRejected) {
      slo_.record(0.0, /*deadline_ok=*/false, obs::SloKind::kRejected);
    }
    std::ostringstream os;
    os << "{\"index\":" << index;
    if (!id.empty()) os << ",\"id\":\"" << obs::json_escape(id) << "\"";
    os << ",\"status\":\"" << to_string(status) << "\""
       << ",\"error\":\"" << obs::json_escape(error) << "\"}";
    std::string access;
    if (config_.access_log != nullptr) {
      std::ostringstream al;
      al << "{\"index\":" << index << ",\"id\":\"" << obs::json_escape(id)
         << "\""
         << ",\"status\":\"" << to_string(status) << "\""
         << ",\"error\":\"" << obs::json_escape(error) << "\""
         << ",\"queue_us\":" << obs::json_number(queue_us) << "}";
      access = al.str();
    }
    complete(index, status, os.str(), std::move(access));
  }

  void complete(std::size_t index, RequestStatus status, std::string line,
                std::string access) {
    switch (status) {
      case RequestStatus::kOk: ++n_ok_; c_ok_.inc(); break;
      case RequestStatus::kBudgetExhausted: ++n_budget_; c_budget_.inc(); break;
      case RequestStatus::kInvalid: ++n_invalid_; c_invalid_.inc(); break;
      case RequestStatus::kRejected: ++n_rejected_; c_rejected_.inc(); break;
    }
    {
      const core::LockGuard lock(done_mu_);
      done_.emplace(index, Done{std::move(line), std::move(access)});
    }
    done_cv_.notify_all();
  }

  /// Write every response whose turn has come (responses are emitted in
  /// input order; out-of-order completions wait in done_).
  void flush_ready() {
    const core::LockGuard lock(done_mu_);
    flush_ready_locked();
  }

  void flush_ready_locked() SP_REQUIRES(done_mu_) {
    auto it = done_.find(next_emit_);
    while (it != done_.end()) {
      out_ << it->second.response << "\n";
      // The access log is written by this reorder/emit stage so its line
      // order always matches the response order, worker timing aside.
      if (config_.access_log != nullptr) {
        *config_.access_log << it->second.access << "\n";
      }
      done_.erase(it);
      ++next_emit_;
      it = done_.find(next_emit_);
    }
  }

  std::ostream& out_;
  const BatchConfig config_;
  core::Deadline global_;
  ResultCache cache_;

  std::unique_ptr<par::BoundedQueue<Request>> queue_;
  std::size_t window_ = 0;
  std::size_t total_ = 0;

  core::Mutex inflight_mu_;
  std::vector<core::Deadline> inflight_ SP_GUARDED_BY(inflight_mu_);
  std::atomic<bool> draining_{false};
  // Written once under inflight_mu_ strictly before the release-store of
  // draining_; readers see it only after draining() observes true
  // (acquire), so it is immutable from their perspective -- deliberately
  // not mu-guarded, the rejection path reads it lock-free.
  std::string drain_reason_;

  /// One completed request waiting in the reorder buffer: its response
  /// line plus (when enabled) its access-log line, emitted together.
  struct Done {
    std::string response;
    std::string access;
  };

  core::Mutex done_mu_;
  core::CondVar done_cv_;
  std::map<std::size_t, Done> done_ SP_GUARDED_BY(done_mu_);
  std::size_t next_emit_ SP_GUARDED_BY(done_mu_) = 0;

  std::atomic<std::size_t> n_ok_{0};
  std::atomic<std::size_t> n_budget_{0};
  std::atomic<std::size_t> n_invalid_{0};
  std::atomic<std::size_t> n_rejected_{0};
  std::atomic<std::size_t> inflight_count_{0};

  struct QualityCounters {
    obs::Counter solves;
    obs::Counter gap_sum;  // integer permille, divide by solves for mean
  };

  obs::SloTracker slo_;
  obs::Counter c_ok_;
  obs::Counter c_budget_;
  obs::Counter c_invalid_;
  obs::Counter c_rejected_;
  obs::Counter c_cache_mismatch_;
  obs::Gauge g_queue_depth_;
  obs::Gauge g_inflight_;
  obs::HdrHistogram h_request_ms_;
  obs::HdrHistogram h_queue_us_;
  obs::HdrHistogram h_gap_;
  std::map<std::string, QualityCounters> quality_;
};

}  // namespace

BatchReport run_batch(std::istream& in, std::ostream& out,
                      const BatchConfig& config) {
  Engine engine(out, config);
  return engine.run(in);
}

}  // namespace sectorpack::srv
