#pragma once
// Session layer for `sectorpack serve`: long-lived instances under churn.
//
// A session owns a mutable model::Instance plus the cached state that makes
// re-solving after a delta (customer arrives/leaves, demand drift, antenna
// added) much cheaper than a from-scratch solve, while staying *byte-
// identical* to one: Session::solution() after any delta equals what
// srv::run_solver would return on a fresh Instance built from the same
// post-delta records. That contract is what lets `check.sh --serve` and the
// randomized cross-check test diff the two paths bitwise.
//
// The incremental path applies to the greedy family (the serving solver:
// deterministic, anytime, and round-structured). Greedy commits one
// (antenna, window, packed set) per round, and each round's verdict for an
// antenna is a pure function of (antenna spec, unserved in-band customer
// set). The session exploits that with a dirty-window memo:
//
//   * every customer gets a *stable session id* (sid), strictly ascending
//     in instance order (appends take fresh ids, removals keep order), and
//     a 64-bit fingerprint term hashing (sid, theta, radius, demand,
//     value);
//   * per antenna, the session maintains the wrapping sum of terms over its
//     radial band -- an order-independent fingerprint of the in-band set,
//     updated in O(k) per delta;
//   * replaying the greedy round loop, each (antenna, round) evaluation is
//     keyed by the current unserved-in-band fingerprint. A memo hit
//     replays the stored window verdict (value, alpha, chosen sids); only
//     fingerprints the delta actually dirtied pay a real window sweep --
//     and those sweeps run against the per-session knapsack::OracleCache,
//     so even a dirty antenna mostly replays cached window packings.
//
// Equality of fingerprints implies (up to the same 64-bit collision
// exposure the OracleCache already accepts, and backstopped by the
// src/verify/ invariants below) an identical evaluation input, and every
// stage downstream of the input is deterministic, so a memoized verdict is
// bitwise what the sweep would have recomputed. Deadline-truncated sweeps
// (WindowChoice::complete == false) are never memoized. Non-greedy
// sessions fall back to a full run_solver per delta (trivially identical).
//
// Cache soundness across deltas: adds introduce fresh sids (never seen by
// any cache); removals retire sids (stale entries become unreachable keys);
// a demand change keeps the sid, so the member-set fingerprints inside the
// OracleCache would alias the old demand -- demand_set therefore clears the
// per-session oracle caches (the pick memo keys include demands via the
// terms, so it survives). antenna_add extends the cache/memo arrays and
// keeps existing entries (each is a pure function of its own antenna's
// spec, which did not change).
//
// Thread model: a Session is confined to the serve loop's thread; only the
// core::Deadline handed into a delta may be touched concurrently (the drain
// monitor cancels it).

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/deadline.hpp"
#include "src/knapsack/incremental.hpp"
#include "src/knapsack/knapsack.hpp"
#include "src/model/instance.hpp"
#include "src/model/solution.hpp"
#include "src/srv/fingerprint.hpp"

namespace sectorpack::srv {

/// How a session answered one register/delta.
struct ResolveStats {
  bool incremental = false;    // greedy replay (vs full run_solver dispatch)
  std::size_t rounds = 0;      // greedy rounds replayed
  std::size_t evals = 0;       // (antenna, round) evaluations considered
  std::size_t memo_hits = 0;   // served from the window-fingerprint memo
  std::size_t fresh_evals = 0; // dirty: paid a real window sweep
  /// fresh_evals / evals -- the dirty-window ratio (0 when nothing was
  /// evaluated). 1.0 on the initial solve, near 0 for a localized delta.
  double dirty_ratio = 0.0;
};

class Session {
 public:
  /// Takes ownership of the instance; solve_initial() must run before the
  /// first delta (the serve engine does this at `register`).
  Session(model::Instance inst, SolverKey key);

  [[nodiscard]] const model::Instance& instance() const noexcept {
    return inst_;
  }
  [[nodiscard]] const SolverKey& solver() const noexcept { return key_; }
  /// The current solution (for the current, post-delta instance).
  [[nodiscard]] const model::Solution& solution() const noexcept {
    return solution_;
  }
  /// Deltas applied since registration.
  [[nodiscard]] std::uint64_t deltas() const noexcept { return deltas_; }

  /// Cold solve at registration; warms the window memos on the greedy path.
  ResolveStats solve_initial(const core::SolveOptions& opts);

  /// Apply one delta and re-solve. Validation failures (bad demand, index
  /// out of range, bad antenna spec) throw std::invalid_argument /
  /// std::out_of_range *before* any state changes -- the session stays on
  /// its previous instance and solution. Customer indices are current
  /// instance indices; customer_remove shifts the ones above it down.
  ResolveStats customer_add(const model::Customer& c,
                            const core::SolveOptions& opts);
  ResolveStats customer_remove(std::size_t customer,
                               const core::SolveOptions& opts);
  ResolveStats demand_set(std::size_t customer, double demand,
                          const core::SolveOptions& opts);
  ResolveStats antenna_add(const model::AntennaSpec& spec,
                           const core::SolveOptions& opts);

 private:
  struct MemoPick {
    double value = 0.0;
    double alpha = 0.0;
    std::vector<std::size_t> chosen_sids;  // ascending (chosen is sorted)
  };

  /// Stop inserting (stay correct, like OracleCache) past this many
  /// memoized verdicts per antenna.
  static constexpr std::size_t kMemoMaxEntries = std::size_t{1} << 20;

  ResolveStats resolve(const core::SolveOptions& opts);
  ResolveStats replay_greedy(const core::SolveOptions& opts);
  /// Fingerprint term of customer `i` as currently in the instance, under
  /// its stable id: hash of (sid, theta, radius, demand, value) bits.
  [[nodiscard]] std::uint64_t term_at(std::size_t i) const;
  /// Instance index of a live sid (binary search: sids ascend with index);
  /// SIZE_MAX when the sid was retired.
  [[nodiscard]] std::size_t index_of_sid(std::size_t sid) const;
  /// Grow caches_/memo_ to one slot per antenna.
  void ensure_antenna_slots();

  model::Instance inst_;
  SolverKey key_;
  model::Solution solution_;
  std::uint64_t deltas_ = 0;

  knapsack::Oracle oracle_ = knapsack::Oracle::exact();  // GreedyConfig{}

  std::vector<std::size_t> sid_;    // instance index -> stable session id
  std::vector<std::uint64_t> term_; // instance index -> fingerprint term
  std::size_t next_sid_ = 0;
  std::vector<std::uint64_t> band_fp_;  // antenna -> sum of in-band terms

  // Per-antenna window caches, one heap slot per antenna. The session owns
  // each OracleCache exclusively (IncrementalOracle only borrows a raw
  // pointer for the duration of one resolve), and the unique_ptr
  // indirection keeps the immovable cache (it holds a core::Mutex) at a
  // stable address while the vector itself grows on antenna_add. Greedy
  // shares slot 0 across identical antennas; the replay mirrors that
  // indexing (identical ? 0 : j).
  std::vector<std::unique_ptr<knapsack::OracleCache>> caches_;
  std::vector<std::unordered_map<std::uint64_t, MemoPick>> memo_;
};

/// Session id ("s0", "s1", ...) -> Session, owned by one serve run.
class SessionStore {
 public:
  /// Creates a session and returns its id.
  std::string create(model::Instance inst, SolverKey key);
  /// nullptr when `id` names no live session.
  [[nodiscard]] Session* find(const std::string& id);
  /// True when `id` existed (and is now closed).
  bool close(const std::string& id);
  void clear() { sessions_.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return sessions_.size(); }
  /// Live ids in creation order (drain closes them deterministically).
  [[nodiscard]] std::vector<std::string> ids() const;

 private:
  std::map<std::string, std::unique_ptr<Session>> sessions_;
  std::size_t next_id_ = 0;
};

}  // namespace sectorpack::srv
