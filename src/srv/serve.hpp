#pragma once
// Session serving: `sectorpack serve` daemon loop.
//
// Where `sectorpack batch` answers independent one-shot requests, `serve`
// holds *sessions*: a client registers an instance once, then streams
// deltas (customer arrives/leaves, demand drift, antenna added) and gets a
// freshly re-solved answer after each one -- without re-sending or
// re-solving the whole instance. The heavy lifting (stable-id fingerprints,
// dirty-window memos, byte-identity with a from-scratch solve) lives in
// srv::Session; this layer is the protocol: one JSON op per input line, one
// JSON response per op, in input order. See docs/serving.md "Session
// protocol" for the schema.
//
// Ops: register, customer_add, customer_remove, demand_set, antenna_add,
// close. Failure isolation is per line -- a malformed op, an unknown
// session, or a validation error yields a status "invalid" response and the
// loop continues; the session named by a failed delta keeps its previous
// instance and solution.
//
// The loop is sequential (sessions are mutable state; one writer). Drain is
// cooperative, like batch: a monitor thread watches the interrupt flag and
// the global budget, cancels the deadline of the op in flight (it finishes
// as a feasible budget-exhausted incumbent), and every later line is
// answered with status "rejected". Every input line always gets exactly one
// response, and all sessions are closed before run_serve returns.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/model/instance.hpp"
#include "src/srv/fingerprint.hpp"

namespace sectorpack::srv {

/// One parsed serve op (exposed for tests; run_serve parses per line).
struct ServeOp {
  std::size_t index = 0;  // 0-based op ordinal (blank lines skipped)
  std::string op;         // register | customer_add | ... | close
  std::string id;         // optional client tag, echoed in the response
  std::string session;    // target session; empty only for register
  double time_limit = -1.0;  // per-op budget in seconds; < 0 = none

  // register
  std::string instance_file;
  std::string instance_text;
  SolverKey solver;

  // customer_add
  model::Customer customer_rec;
  // customer_remove / demand_set
  std::size_t customer = 0;
  // demand_set
  double demand = 0.0;
  // antenna_add
  model::AntennaSpec antenna;
};

/// Parse one op line. Throws std::runtime_error naming the offending field.
[[nodiscard]] ServeOp parse_serve_op(const std::string& line,
                                     std::size_t index);

struct ServeConfig {
  double time_limit = -1.0;  // global wall-clock budget; < 0 = unlimited
  std::size_t max_sessions = 64;  // register beyond this is invalid
  /// Cooperative interrupt (the CLI points this at its SIGINT flag): once
  /// true, the op in flight finishes as an incumbent and later lines are
  /// rejected.
  const std::atomic<bool>* interrupt = nullptr;
  /// Rolling-window size for the SLO tracker (clamped to >= 1). Delta and
  /// register solves are recorded as kSolve, rejected lines as kRejected;
  /// serve has no result cache, so cache_hit_rate stays 0.
  std::size_t slo_window = 512;
};

struct ServeReport {
  std::size_t requests = 0;   // non-blank input lines
  std::size_t registers = 0;  // sessions created
  std::size_t deltas = 0;     // delta ops applied (any status but invalid)
  std::size_t ok = 0;
  std::size_t budget_exhausted = 0;
  std::size_t invalid = 0;
  std::size_t rejected = 0;
  std::uint64_t memo_hits = 0;    // dirty-window memo hits across deltas
  std::uint64_t fresh_evals = 0;  // window sweeps actually paid for
  bool interrupted = false;  // a drain was triggered before input ran out
  /// Rolling-window SLO rollup at drain (obs::SloTracker::Summary).
  std::string slo_summary;

  [[nodiscard]] std::string to_string() const;
};

/// Run the serve loop: JSONL ops on `in`, JSONL responses on `out` (one per
/// non-blank line, input order). Never throws for per-op problems.
ServeReport run_serve(std::istream& in, std::ostream& out,
                      const ServeConfig& config);

}  // namespace sectorpack::srv
