#include "src/core/sync.hpp"
#include "src/srv/serve.hpp"

#include <chrono>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/bench_util/timer.hpp"
#include "src/core/deadline.hpp"
#include "src/model/io.hpp"
#include "src/model/solution.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/slo.hpp"
#include "src/obs/trace.hpp"
#include "src/race/race.hpp"
#include "src/srv/engine.hpp"
#include "src/srv/jsonl.hpp"
#include "src/srv/session.hpp"

namespace sectorpack::srv {

namespace {

// Same protocol-level bounds as the batch engine (engine.cpp): doubles that
// cannot name one integer exactly are typos, and budgets beyond ~3 years
// are indistinguishable from "no limit" (Deadline::after additionally
// clamps -- defense in depth).
constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53
constexpr double kMaxTimeLimitSeconds = 1e8;

const JsonValue* find_field(const JsonObject& object, const char* name) {
  const auto it = object.find(name);
  return it == object.end() ? nullptr : &it->second;
}

std::string optional_string_field(const JsonObject& object, const char* name) {
  const JsonValue* v = find_field(object, name);
  if (v == nullptr) return {};
  if (v->kind != JsonValue::Kind::kString) {
    throw std::runtime_error(std::string("field '") + name +
                             "' must be a string");
  }
  return v->string;
}

double require_number_field(const JsonObject& object, const char* name) {
  const JsonValue* v = find_field(object, name);
  if (v == nullptr) {
    throw std::runtime_error(std::string("missing field '") + name + "'");
  }
  if (v->kind != JsonValue::Kind::kNumber) {
    throw std::runtime_error(std::string("field '") + name +
                             "' must be a number");
  }
  return v->number;
}

std::uint64_t require_integer(const char* name, double value) {
  if (!(value >= 0.0) || value > kMaxExactInteger ||
      std::floor(value) != value) {
    throw std::runtime_error(std::string("field '") + name +
                             "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(value);
}

void check_fields(const JsonObject& object,
                  std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : object) {
    bool known = false;
    for (const char* name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::runtime_error("unknown field '" + key + "' for this op");
    }
  }
}

}  // namespace

ServeOp parse_serve_op(const std::string& line, std::size_t index) {
  const JsonObject object = parse_flat_object(line);

  ServeOp op;
  op.index = index;
  op.op = optional_string_field(object, "op");
  if (op.op.empty()) throw std::runtime_error("missing field 'op'");
  op.id = optional_string_field(object, "id");
  op.session = optional_string_field(object, "session");

  if (const JsonValue* limit = find_field(object, "time_limit")) {
    if (limit->kind != JsonValue::Kind::kNumber || !(limit->number >= 0.0) ||
        std::isnan(limit->number)) {
      throw std::runtime_error("field 'time_limit' must be a number >= 0");
    }
    if (limit->number > kMaxTimeLimitSeconds) {
      throw std::runtime_error(
          "field 'time_limit' out of range (max 1e8 seconds)");
    }
    op.time_limit = limit->number;
  }

  if (op.op == "register") {
    check_fields(object, {"op", "id", "time_limit", "instance",
                          "instance_file", "solver", "seed", "iterations",
                          "portfolio"});
    op.instance_file = optional_string_field(object, "instance_file");
    op.instance_text = optional_string_field(object, "instance");
    if (op.instance_file.empty() == op.instance_text.empty()) {
      throw std::runtime_error(
          "exactly one of 'instance_file' and 'instance' is required");
    }
    const std::string family = optional_string_field(object, "solver");
    if (!family.empty()) op.solver.family = family;
    if (!is_known_solver(op.solver.family)) {
      throw std::runtime_error("unknown solver '" + op.solver.family + "'");
    }
    if (const JsonValue* seed = find_field(object, "seed")) {
      if (seed->kind != JsonValue::Kind::kNumber) {
        throw std::runtime_error("field 'seed' must be a number");
      }
      op.solver.seed = require_integer("seed", seed->number);
    }
    if (const JsonValue* iters = find_field(object, "iterations")) {
      if (iters->kind != JsonValue::Kind::kNumber) {
        throw std::runtime_error("field 'iterations' must be a number");
      }
      op.solver.iterations = require_integer("iterations", iters->number);
    }
    if (const JsonValue* portfolio = find_field(object, "portfolio")) {
      if (portfolio->kind != JsonValue::Kind::kString) {
        throw std::runtime_error("field 'portfolio' must be a string");
      }
      if (op.solver.family != "race") {
        throw std::runtime_error("field 'portfolio' requires solver 'race'");
      }
      (void)race::parse_portfolio(portfolio->string);
      op.solver.portfolio = portfolio->string;
    }
    return op;
  }

  // Every non-register op targets a session.
  if (op.session.empty()) throw std::runtime_error("missing field 'session'");

  if (op.op == "customer_add") {
    check_fields(object, {"op", "id", "time_limit", "session", "x", "y",
                          "demand", "value"});
    op.customer_rec.pos = {require_number_field(object, "x"),
                           require_number_field(object, "y")};
    op.customer_rec.demand = require_number_field(object, "demand");
    if (find_field(object, "value") != nullptr) {
      op.customer_rec.value = require_number_field(object, "value");
    }
    return op;
  }
  if (op.op == "customer_remove") {
    check_fields(object, {"op", "id", "time_limit", "session", "customer"});
    op.customer = static_cast<std::size_t>(require_integer(
        "customer", require_number_field(object, "customer")));
    return op;
  }
  if (op.op == "demand_set") {
    check_fields(object,
                 {"op", "id", "time_limit", "session", "customer", "demand"});
    op.customer = static_cast<std::size_t>(require_integer(
        "customer", require_number_field(object, "customer")));
    op.demand = require_number_field(object, "demand");
    return op;
  }
  if (op.op == "antenna_add") {
    check_fields(object, {"op", "id", "time_limit", "session", "rho", "range",
                          "capacity", "min_range"});
    op.antenna.rho = require_number_field(object, "rho");
    op.antenna.range = require_number_field(object, "range");
    op.antenna.capacity = require_number_field(object, "capacity");
    if (find_field(object, "min_range") != nullptr) {
      op.antenna.min_range = require_number_field(object, "min_range");
    }
    return op;
  }
  if (op.op == "close") {
    check_fields(object, {"op", "id", "session"});
    return op;
  }
  throw std::runtime_error("unknown op '" + op.op + "'");
}

std::string ServeReport::to_string() const {
  std::ostringstream os;
  os << "requests=" << requests << " registers=" << registers
     << " deltas=" << deltas << " ok=" << ok
     << " budget_exhausted=" << budget_exhausted << " invalid=" << invalid
     << " rejected=" << rejected << " memo_hit=" << memo_hits
     << " fresh_eval=" << fresh_evals;
  if (interrupted) os << " interrupted=yes";
  if (!slo_summary.empty()) os << " slo[" << slo_summary << "]";
  return os.str();
}

namespace {

/// Everything one run_serve call needs. Sequential op loop plus a monitor
/// thread that turns the interrupt flag / global budget into a cancel of
/// the op in flight.
class ServeLoop {
 public:
  ServeLoop(std::ostream& out, const ServeConfig& config)
      : out_(out),
        config_(config),
        global_(config.time_limit >= 0.0
                    ? core::Deadline::after(config.time_limit)
                    : core::Deadline::never()),
        slo_(config.slo_window),
        c_ok_(obs::counter("serve.requests.ok")),
        c_budget_(obs::counter("serve.requests.budget_exhausted")),
        c_invalid_(obs::counter("serve.requests.invalid")),
        c_rejected_(obs::counter("serve.requests.rejected")),
        c_memo_hits_(obs::counter("serve.memo.hits")),
        c_memo_misses_(obs::counter("serve.memo.misses")),
        g_sessions_(obs::gauge("serve.sessions")),
        h_register_ms_(obs::hdr_histogram("serve.register_ms")),
        h_delta_ms_(obs::hdr_histogram("serve.delta_ms")),
        h_dirty_(obs::hdr_histogram("serve.dirty_permille")) {}

  ServeReport run(std::istream& in) {
    std::thread monitor([this] { watch(); });

    std::string line;
    std::size_t index = 0;
    while (std::getline(in, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) {
        continue;  // blank line: not an op, no response
      }
      handle_line(line, index++);
    }

    // End of input: close whatever the client left open. The final
    // solution of each session was already delivered with its last delta,
    // so closing is just teardown -- but it must happen before the report
    // (and the CLI's final exporter tick) so `serve.sessions` ends at 0.
    store_.clear();
    g_sessions_.set(0.0);

    {
      const core::LockGuard lock(mu_);
      stop_ = true;
    }
    monitor.join();

    slo_.publish();

    ServeReport report = report_;
    report.interrupted = draining();
    report.slo_summary = slo_.summary().to_string();
    return report;
  }

 private:
  // ------------------------------------------------------------------ drain

  void watch() {
    for (;;) {
      {
        const core::LockGuard lock(mu_);
        if (stop_) return;
        if (!draining_) {
          // sp-sync: relaxed poll of the caller's interrupt flag; the 5ms
          // monitor cadence dominates any propagation delay.
          if (config_.interrupt != nullptr &&
              config_.interrupt->load(std::memory_order_relaxed)) {
            begin_drain_locked("serve draining (interrupted)");
          } else if (global_.expired()) {
            begin_drain_locked("global time limit exhausted");
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  void begin_drain_locked(const char* reason) SP_REQUIRES(mu_) {
    draining_ = true;
    drain_reason_ = reason;
    core::note_expired("srv.serve");
    // The op in flight finishes promptly as a feasible budget-exhausted
    // incumbent; every later line is rejected before it starts.
    inflight_.cancel();
    global_.cancel();
  }

  [[nodiscard]] bool draining() {
    const core::LockGuard lock(mu_);
    if (!draining_) {
      // The monitor polls at 5ms; checking inline here as well keeps the
      // first post-interrupt line from slipping through the gap.
      // sp-sync: relaxed poll of the caller's interrupt flag (see watch()).
      if (config_.interrupt != nullptr &&
          config_.interrupt->load(std::memory_order_relaxed)) {
        begin_drain_locked("serve draining (interrupted)");
      } else if (global_.expired()) {
        begin_drain_locked("global time limit exhausted");
      }
    }
    return draining_;
  }

  // ------------------------------------------------------------------- loop

  void handle_line(const std::string& line, std::size_t index) {
    ++report_.requests;
    if (draining()) {
      std::string reason;
      {
        const core::LockGuard lock(mu_);
        reason = drain_reason_;
      }
      emit_error(index, /*id=*/"", /*session=*/"", RequestStatus::kRejected,
                 reason);
      return;
    }
    ServeOp op;
    try {
      op = parse_serve_op(line, index);
    } catch (const std::exception& e) {
      emit_error(index, /*id=*/"", /*session=*/"", RequestStatus::kInvalid,
                 e.what());
      return;
    }
    try {
      dispatch(op);
    } catch (const std::exception& e) {
      // Validation errors from the session/instance layer (bad demand,
      // index out of range, ...). The session kept its previous state.
      emit_error(op.index, op.id, op.session, RequestStatus::kInvalid,
                 e.what());
    }
  }

  void dispatch(const ServeOp& op) {
    const obs::ScopedSpan span("serve.request");
    if (op.op == "register") {
      do_register(op);
      return;
    }
    if (op.op == "close") {
      const bool existed = store_.close(op.session);
      g_sessions_.set(static_cast<double>(store_.size()));
      if (!existed) {
        emit_error(op.index, op.id, op.session, RequestStatus::kInvalid,
                   "unknown session '" + op.session + "'");
        return;
      }
      ++report_.ok;
      c_ok_.inc();
      std::ostringstream os;
      os << "{\"index\":" << op.index;
      if (!op.id.empty()) {
        os << ",\"id\":\"" << obs::json_escape(op.id) << "\"";
      }
      os << ",\"op\":\"close\",\"session\":\""
         << obs::json_escape(op.session) << "\",\"status\":\"ok\"}";
      out_ << os.str() << "\n";
      out_.flush();
      return;
    }
    do_delta(op);
  }

  void do_register(const ServeOp& op) {
    const bench_util::Timer timer;
    if (store_.size() >= config_.max_sessions) {
      emit_error(op.index, op.id, /*session=*/"", RequestStatus::kInvalid,
                 "session limit reached (" +
                     std::to_string(config_.max_sessions) + ")");
      return;
    }
    model::Instance inst;
    try {
      inst = op.instance_file.empty()
                 ? model::instance_from_string(op.instance_text)
                 : model::read_instance_file(op.instance_file);
    } catch (const std::exception& e) {
      emit_error(op.index, op.id, /*session=*/"", RequestStatus::kInvalid,
                 e.what());
      return;
    }

    const std::string id = store_.create(std::move(inst), op.solver);
    Session* session = store_.find(id);
    g_sessions_.set(static_cast<double>(store_.size()));
    ++report_.registers;

    const ResolveStats stats = session->solve_initial(arm(op.time_limit));
    disarm();
    const double elapsed_ms = timer.elapsed_ms();
    h_register_ms_.observe(elapsed_ms);
    emit_solved(op, id, *session, stats, elapsed_ms);
  }

  void do_delta(const ServeOp& op) {
    Session* session = store_.find(op.session);
    if (session == nullptr) {
      emit_error(op.index, op.id, op.session, RequestStatus::kInvalid,
                 "unknown session '" + op.session + "'");
      return;
    }
    const bench_util::Timer timer;
    const core::SolveOptions opts = arm(op.time_limit);
    ResolveStats stats;
    try {
      if (op.op == "customer_add") {
        stats = session->customer_add(op.customer_rec, opts);
      } else if (op.op == "customer_remove") {
        stats = session->customer_remove(op.customer, opts);
      } else if (op.op == "demand_set") {
        stats = session->demand_set(op.customer, op.demand, opts);
      } else {  // antenna_add (parse_serve_op admits nothing else)
        stats = session->antenna_add(op.antenna, opts);
      }
    } catch (...) {
      disarm();
      throw;
    }
    disarm();
    const double elapsed_ms = timer.elapsed_ms();
    ++report_.deltas;
    h_delta_ms_.observe(elapsed_ms);
    h_dirty_.observe(1000.0 * stats.dirty_ratio);
    report_.memo_hits += stats.memo_hits;
    report_.fresh_evals += stats.fresh_evals;
    c_memo_hits_.add(stats.memo_hits);
    c_memo_misses_.add(stats.fresh_evals);
    emit_solved(op, op.session, *session, stats, elapsed_ms);
  }

  /// Per-op deadline, clamped under the remaining global budget and
  /// registered so the drain monitor can cancel it mid-solve.
  core::SolveOptions arm(double time_limit) {
    const core::Deadline deadline =
        core::Deadline::after_at_most(time_limit, global_);
    const core::LockGuard lock(mu_);
    inflight_ = deadline;
    if (draining_) deadline.cancel();
    return core::SolveOptions{deadline};
  }

  void disarm() {
    const core::LockGuard lock(mu_);
    inflight_ = core::Deadline{};
  }

  // -------------------------------------------------------------- responses

  void emit_solved(const ServeOp& op, const std::string& session_id,
                   const Session& session, const ResolveStats& stats,
                   double elapsed_ms) {
    const model::Solution& sol = session.solution();
    const RequestStatus status =
        sol.status == model::SolveStatus::kComplete
            ? RequestStatus::kOk
            : RequestStatus::kBudgetExhausted;
    if (status == RequestStatus::kOk) {
      ++report_.ok;
      c_ok_.inc();
    } else {
      ++report_.budget_exhausted;
      c_budget_.inc();
    }
    slo_.record(elapsed_ms, /*deadline_ok=*/status == RequestStatus::kOk,
                obs::SloKind::kSolve);

    std::ostringstream os;
    os << "{\"index\":" << op.index;
    if (!op.id.empty()) os << ",\"id\":\"" << obs::json_escape(op.id) << "\"";
    os << ",\"op\":\"" << obs::json_escape(op.op) << "\""
       << ",\"session\":\"" << obs::json_escape(session_id) << "\""
       << ",\"status\":\"" << to_string(status) << "\""
       << ",\"solver\":\"" << obs::json_escape(session.solver().family)
       << "\""
       << ",\"incremental\":" << (stats.incremental ? "true" : "false")
       << ",\"memo_hits\":" << stats.memo_hits
       << ",\"fresh_evals\":" << stats.fresh_evals
       << ",\"dirty_permille\":"
       << obs::json_number(1000.0 * stats.dirty_ratio)
       << ",\"served_value\":"
       << obs::json_number(served_value(session.instance(), sol))
       << ",\"solve_ms\":" << obs::json_number(elapsed_ms)
       << ",\"solution\":\"" << obs::json_escape(model::to_string(sol))
       << "\"}";
    out_ << os.str() << "\n";
    out_.flush();
  }

  void emit_error(std::size_t index, const std::string& id,
                  const std::string& session, RequestStatus status,
                  const std::string& error) {
    if (status == RequestStatus::kRejected) {
      ++report_.rejected;
      c_rejected_.inc();
      // A rejected op is a deadline miss from the client's point of view;
      // invalid ops are client errors and are deliberately not recorded
      // (same accounting as the batch engine, docs/observability.md).
      slo_.record(0.0, /*deadline_ok=*/false, obs::SloKind::kRejected);
    } else {
      ++report_.invalid;
      c_invalid_.inc();
    }
    std::ostringstream os;
    os << "{\"index\":" << index;
    if (!id.empty()) os << ",\"id\":\"" << obs::json_escape(id) << "\"";
    if (!session.empty()) {
      os << ",\"session\":\"" << obs::json_escape(session) << "\"";
    }
    os << ",\"status\":\"" << to_string(status) << "\""
       << ",\"error\":\"" << obs::json_escape(error) << "\"}";
    out_ << os.str() << "\n";
    out_.flush();
  }

  std::ostream& out_;
  const ServeConfig& config_;
  core::Deadline global_;
  SessionStore store_;
  obs::SloTracker slo_;
  ServeReport report_;

  core::Mutex mu_;
  bool stop_ SP_GUARDED_BY(mu_) = false;
  bool draining_ SP_GUARDED_BY(mu_) = false;
  std::string drain_reason_ SP_GUARDED_BY(mu_);
  core::Deadline inflight_
      SP_GUARDED_BY(mu_);  // the handle; cancel() itself is thread-safe

  obs::Counter c_ok_;
  obs::Counter c_budget_;
  obs::Counter c_invalid_;
  obs::Counter c_rejected_;
  obs::Counter c_memo_hits_;
  obs::Counter c_memo_misses_;
  obs::Gauge g_sessions_;
  obs::HdrHistogram h_register_ms_;
  obs::HdrHistogram h_delta_ms_;
  obs::HdrHistogram h_dirty_;
};

}  // namespace

ServeReport run_serve(std::istream& in, std::ostream& out,
                      const ServeConfig& config) {
  ServeLoop loop(out, config);
  return loop.run(in);
}

}  // namespace sectorpack::srv
