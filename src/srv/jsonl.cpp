#include "src/srv/jsonl.hpp"

#include <cctype>
#include <stdexcept>

namespace sectorpack::srv {

namespace {

// Hand-rolled cursor parser. The grammar is deliberately tiny (flat object
// of scalars), so the whole thing stays small enough to audit against the
// robustness rules in docs/robustness.md.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    if (at_end()) fail("unexpected end of line");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      fail(std::string("expected '") + c + "'");
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("bad request JSON at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  /// JSON string, cursor on the opening quote. Decodes the standard escape
  /// set; \uXXXX (including surrogate pairs) is re-encoded as UTF-8.
  std::string parse_string() {
    expect('"');
    std::string out;
    // Bounded by the line length: every iteration consumes a byte.
    while (!at_end()) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string (escape it)");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail(std::string("unknown escape \\") + esc);
      }
    }
    fail("unterminated string");
  }

  double parse_number() {
    // Strict JSON grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // -- no leading '+', no leading zeros, no bare '.' or trailing '.'.
    const std::size_t start = pos_;
    const auto digit_here = [&] {
      return !at_end() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0;
    };
    const auto eat_digits = [&] {
      while (digit_here()) ++pos_;
    };
    if (!at_end() && peek() == '-') ++pos_;
    if (!digit_here()) fail("malformed number");
    if (peek() == '0') {
      ++pos_;
      if (digit_here()) fail("malformed number (leading zero)");
    } else {
      eat_digits();
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (!digit_here()) fail("malformed number");
      eat_digits();
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '-' || peek() == '+')) ++pos_;
      if (!digit_here()) fail("malformed number");
      eat_digits();
    }
    const std::string token(text_.substr(start, pos_ - start));
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(token, &used);
    } catch (const std::exception&) {
      fail("number out of range: '" + token + "'");
    }
    if (used != token.size()) fail("malformed number token '" + token + "'");
    return value;
  }

  /// Literal keyword (true/false/null), cursor on its first letter.
  bool try_keyword(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

 private:
  void append_unicode_escape(std::string& out) {
    const unsigned first = parse_hex4();
    unsigned code = first;
    if (first >= 0xD800 && first <= 0xDBFF) {  // high surrogate
      // Only a \uDC00-\uDFFF escape can complete the pair. Anything else
      // -- end of line, a literal character, a different escape -- leaves
      // the high surrogate unpaired, which no UTF-8 re-encoding can
      // represent; name that directly instead of a generic expect failure.
      if (at_end() || peek() != '\\') {
        fail("unpaired high surrogate \\u escape");
      }
      expect('\\');
      if (at_end() || peek() != 'u') {
        fail("unpaired high surrogate \\u escape");
      }
      expect('u');
      const unsigned second = parse_hex4();
      if (second < 0xDC00 || second > 0xDFFF) {
        fail("high surrogate not followed by a low surrogate");
      }
      code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
    } else if (first >= 0xDC00 && first <= 0xDFFF) {
      fail("stray low surrogate");
    }
    // Encode `code` as UTF-8.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape digit");
      }
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonObject parse_flat_object(std::string_view line) {
  Cursor cur(line);
  JsonObject object;
  cur.skip_ws();
  cur.expect('{');
  cur.skip_ws();
  if (cur.peek() != '}') {
    // Bounded by the line length: every pair consumes at least one byte,
    // and the separator after each pair either ends the object or fails.
    bool more = true;
    while (more) {
      cur.skip_ws();
      std::string key = cur.parse_string();
      cur.skip_ws();
      cur.expect(':');
      cur.skip_ws();
      JsonValue value;
      const char c = cur.peek();
      if (c == '"') {
        value.kind = JsonValue::Kind::kString;
        value.string = cur.parse_string();
      } else if (c == '{' || c == '[') {
        cur.fail("nested objects/arrays are not allowed in request lines");
      } else if (cur.try_keyword("true")) {
        value.kind = JsonValue::Kind::kBool;
        value.boolean = true;
      } else if (cur.try_keyword("false")) {
        value.kind = JsonValue::Kind::kBool;
        value.boolean = false;
      } else if (cur.try_keyword("null")) {
        value.kind = JsonValue::Kind::kNull;
      } else {
        value.kind = JsonValue::Kind::kNumber;
        value.number = cur.parse_number();
      }
      if (!object.emplace(std::move(key), std::move(value)).second) {
        cur.fail("duplicate key");
      }
      cur.skip_ws();
      const char sep = cur.take();
      if (sep == '}') {
        more = false;
      } else if (sep != ',') {
        cur.fail("expected ',' or '}'");
      }
    }
  } else {
    cur.expect('}');
  }
  cur.skip_ws();
  if (!cur.at_end()) cur.fail("trailing bytes after object");
  return object;
}

}  // namespace sectorpack::srv
