#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/knapsack/knapsack.hpp"
#include "src/obs/metrics.hpp"

namespace sectorpack::knapsack {

Result solve_brute_force(std::span<const Item> items, double capacity) {
  const std::size_t n = items.size();
  if (n > 25) {
    throw std::invalid_argument("solve_brute_force: n > 25");
  }
  Result best;
  const std::uint32_t masks = n >= 32 ? 0u : (1u << n);
  for (std::uint32_t m = 0; m < masks; ++m) {
    double v = 0.0;
    double w = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (m & (1u << i)) {
        v += items[i].value;
        w += items[i].weight;
      }
    }
    if (w <= capacity && v > best.value) {
      best.value = v;
      best.weight = w;
      best.chosen.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (m & (1u << i)) best.chosen.push_back(i);
      }
    }
  }
  return best;
}

namespace {

// Handles live behind a noinline accessor so the static-init guard and
// registration path stay out of the solver's codegen (keeping the DP loop's
// optimization intact; the guard showed up as ~10% on bench_f5 otherwise).
struct DpCounters {
  obs::Counter calls = obs::counter("knapsack.dp_calls");
  obs::Counter cells = obs::counter("knapsack.dp_cells");
};

[[gnu::noinline]] const DpCounters& dp_counters() {
  static const DpCounters counters;
  return counters;
}

bool is_integral(double w) {
  return std::abs(w - std::round(w)) <= kIntegralityTol;
}

// Bit-packed (n x C+1) choice matrix for DP reconstruction.
class ChoiceBits {
 public:
  ChoiceBits(std::size_t rows, std::size_t cols)
      : cols_(cols), bits_((rows * cols + 63) / 64, 0) {}
  void set(std::size_t r, std::size_t c) {
    const std::size_t idx = r * cols_ + c;
    bits_[idx >> 6] |= (std::uint64_t{1} << (idx & 63));
  }
  [[nodiscard]] bool get(std::size_t r, std::size_t c) const {
    const std::size_t idx = r * cols_ + c;
    return (bits_[idx >> 6] >> (idx & 63)) & 1;
  }

 private:
  std::size_t cols_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace

bool dp_applicable(std::span<const Item> items, double capacity) {
  if (capacity < 0.0) return true;  // trivially empty
  double cap = std::floor(capacity + kIntegralityTol);
  if (cap > 1e12) return false;
  const auto cols = static_cast<std::size_t>(cap) + 1;
  if (items.size() * cols > kMaxDpCells) return false;
  for (const Item& it : items) {
    if (it.weight < 0.0 || !is_integral(it.weight)) return false;
  }
  return true;
}

Result solve_exact_dp(std::span<const Item> items, double capacity) {
  if (!dp_applicable(items, capacity)) {
    throw std::invalid_argument(
        "solve_exact_dp: weights not integral or table too large");
  }
  Result result;
  if (capacity < 0.0 || items.empty()) return result;

  const auto cap =
      static_cast<std::size_t>(std::floor(capacity + kIntegralityTol));
  const std::size_t n = items.size();
  std::vector<double> dp(cap + 1, 0.0);
  ChoiceBits take(n, cap + 1);

  for (std::size_t i = 0; i < n; ++i) {
    const auto w =
        static_cast<std::size_t>(std::llround(items[i].weight));
    const double v = items[i].value;
    if (w > cap || v <= 0.0) continue;
    for (std::size_t c = cap; c + 1 > w; --c) {
      const double cand = dp[c - w] + v;
      if (cand > dp[c]) {
        dp[c] = cand;
        take.set(i, c);
      }
    }
  }

  // Reconstruct from the best capacity.
  std::size_t best_c = 0;
  for (std::size_t c = 1; c <= cap; ++c) {
    if (dp[c] > dp[best_c]) best_c = c;
  }
  result.value = dp[best_c];
  std::size_t c = best_c;
  for (std::size_t i = n; i-- > 0;) {
    if (take.get(i, c)) {
      result.chosen.push_back(i);
      result.weight += items[i].weight;
      c -= static_cast<std::size_t>(std::llround(items[i].weight));
    }
  }
  std::reverse(result.chosen.begin(), result.chosen.end());
  // Counted after the DP: emitting these calls ahead of the table loop
  // shifts its alignment and costs ~10% (see bench_f5 BM_KnapsackDp).
  dp_counters().calls.inc();
  dp_counters().cells.add(static_cast<std::uint64_t>(n) * (cap + 1));
  return result;
}

Result solve_exact_auto(std::span<const Item> items, double capacity) {
  if (dp_applicable(items, capacity)) {
    return solve_exact_dp(items, capacity);
  }
  // Non-integral weights: meet-in-the-middle has a hard O(2^{n/2} n) bound
  // where branch & bound can degenerate (equal-density items), so prefer it
  // while the subset tables stay small.
  if (items.size() <= 30) {
    return solve_mim(items, capacity);
  }
  return solve_bb(items, capacity);
}

}  // namespace sectorpack::knapsack
