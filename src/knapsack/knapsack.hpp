#pragma once
// 0/1 knapsack engine.
//
// The packing core of the paper: once an antenna's orientation is fixed, the
// set of customers it can see is fixed, and "serve as much demand as fits in
// the capacity" is a 0/1 knapsack (value == weight == demand). The engine is
// kept general (value and weight may differ) so priority-weighted variants
// work too.
//
// Solvers and their guarantees (each is property-tested against these):
//   solve_brute_force  -- optimal, n <= 25 (reference only)
//   solve_exact_dp     -- optimal when weights are integral; O(n * C)
//   solve_bb           -- optimal on arbitrary doubles (branch & bound with
//                         fractional bound)
//   solve_greedy       -- >= OPT / 2 (density greedy + best single item)
//   solve_fptas(eps)   -- >= (1 - eps) * OPT (value scaling + DP by value)
//   fractional_upper_bound -- >= OPT (LP relaxation value)

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/deadline.hpp"

namespace sectorpack::knapsack {

struct Item {
  double value = 0.0;   // objective contribution if packed
  double weight = 0.0;  // capacity consumed if packed
};

struct Result {
  double value = 0.0;
  double weight = 0.0;
  std::vector<std::size_t> chosen;  // indices into the input span, ascending
};

/// Exhaustive search. Precondition: items.size() <= 25.
[[nodiscard]] Result solve_brute_force(std::span<const Item> items,
                                       double capacity);

/// Exact DP over integer weights. Preconditions: every weight is integral
/// within kIntegralityTol and >= 0, and (n+1) * (floor(capacity)+1) table
/// cells fit in kMaxDpCells. Throws std::invalid_argument otherwise.
inline constexpr double kIntegralityTol = 1e-9;
inline constexpr std::size_t kMaxDpCells = std::size_t{1} << 28;
[[nodiscard]] Result solve_exact_dp(std::span<const Item> items,
                                    double capacity);

/// True when solve_exact_dp's preconditions hold for these inputs.
[[nodiscard]] bool dp_applicable(std::span<const Item> items, double capacity);

/// Exact branch & bound (arbitrary double weights). `node_limit` bounds the
/// search; throws std::runtime_error if exhausted before proving optimality.
/// `deadline`, polled per node block, degrades instead: the incumbent found
/// so far is returned (feasible, possibly sub-optimal), no throw.
[[nodiscard]] Result solve_bb(std::span<const Item> items, double capacity,
                              std::uint64_t node_limit = 1u << 26,
                              const core::Deadline& deadline = {});

/// Exact meet-in-the-middle: O(2^{n/2} * n) time and memory regardless of
/// the weight structure, so it cannot blow up the way branch & bound can on
/// equal-density items. Precondition: items.size() <= kMaxMimItems.
inline constexpr std::size_t kMaxMimItems = 40;
[[nodiscard]] Result solve_mim(std::span<const Item> items, double capacity);

/// Exact dispatch: DP when weights are integral and the table fits;
/// meet-in-the-middle for small non-integral instances (worst-case
/// bounded); branch & bound otherwise.
[[nodiscard]] Result solve_exact_auto(std::span<const Item> items,
                                      double capacity);

/// Density greedy + best-single-item. Guarantee: value >= OPT / 2.
[[nodiscard]] Result solve_greedy(std::span<const Item> items,
                                  double capacity);

/// FPTAS by value scaling. Guarantee: value >= (1 - eps) * OPT for
/// eps in (0, 1). Running time O(n^2 * n/eps) worst case.
[[nodiscard]] Result solve_fptas(std::span<const Item> items, double capacity,
                                 double eps);

/// Value of the LP relaxation (items may be taken fractionally).
/// Always >= OPT; equals OPT when the greedy prefix fits exactly.
[[nodiscard]] double fractional_upper_bound(std::span<const Item> items,
                                            double capacity);

/// Full LP-relaxation solution: the Dantzig greedy prefix plus at most one
/// fractionally-taken item. value == fractional_upper_bound(...).
struct FractionalResult {
  double value = 0.0;
  double weight = 0.0;
  std::vector<std::size_t> full;        // items taken whole
  std::size_t split_item = kNoSplit;    // the fractional item, if any
  double split_fraction = 0.0;          // in (0, 1)
  static constexpr std::size_t kNoSplit = static_cast<std::size_t>(-1);
};

[[nodiscard]] FractionalResult fractional_solve(std::span<const Item> items,
                                                double capacity);

// ---------------------------------------------------------------------------
// Oracle: the pluggable knapsack solver used by the sector solvers. The
// approximation guarantee of a sector solver composes with the oracle's
// (e.g. submodular greedy with a beta-oracle serves >= (1 - e^-beta) * OPT).

enum class OracleKind : std::uint8_t {
  kExactAuto,  // guarantee 1
  kExactDP,    // guarantee 1 (throws when not applicable)
  kExactBB,    // guarantee 1
  kGreedy,     // guarantee 1/2
  kFptas,      // guarantee 1 - eps
};

class Oracle {
 public:
  explicit Oracle(OracleKind kind, double eps = 0.1) noexcept
      : kind_(kind), eps_(eps) {}

  [[nodiscard]] static Oracle exact() noexcept {
    return Oracle{OracleKind::kExactAuto};
  }
  [[nodiscard]] static Oracle greedy() noexcept {
    return Oracle{OracleKind::kGreedy};
  }
  [[nodiscard]] static Oracle fptas(double eps) noexcept {
    return Oracle{OracleKind::kFptas, eps};
  }

  [[nodiscard]] OracleKind kind() const noexcept { return kind_; }
  [[nodiscard]] double eps() const noexcept { return eps_; }

  /// The factor beta such that solve() returns value >= beta * OPT.
  [[nodiscard]] double guarantee() const noexcept;

  [[nodiscard]] Result solve(std::span<const Item> items,
                             double capacity) const;

  [[nodiscard]] const char* name() const noexcept;

 private:
  OracleKind kind_;
  double eps_;
};

}  // namespace sectorpack::knapsack
