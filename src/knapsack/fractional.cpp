#include <algorithm>
#include <numeric>

#include "src/knapsack/knapsack.hpp"

namespace sectorpack::knapsack {

FractionalResult fractional_solve(std::span<const Item> items,
                                  double capacity) {
  FractionalResult res;
  if (capacity <= 0.0) return res;

  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double lhs = items[a].value * items[b].weight;
    const double rhs = items[b].value * items[a].weight;
    if (lhs != rhs) return lhs > rhs;
    return items[a].value > items[b].value;
  });

  double remaining = capacity;
  for (std::size_t i : order) {
    const Item& it = items[i];
    if (it.value <= 0.0) continue;
    if (it.weight <= remaining) {
      remaining -= it.weight;
      res.weight += it.weight;
      res.value += it.value;
      res.full.push_back(i);
    } else {
      if (it.weight > 0.0 && remaining > 0.0) {
        res.split_item = i;
        res.split_fraction = remaining / it.weight;
        res.value += it.value * res.split_fraction;
        res.weight += remaining;
      }
      break;
    }
  }
  std::sort(res.full.begin(), res.full.end());
  return res;
}

}  // namespace sectorpack::knapsack
