#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/knapsack/knapsack.hpp"
#include "src/obs/metrics.hpp"

namespace sectorpack::knapsack {

namespace {

class ChoiceBits {
 public:
  ChoiceBits(std::size_t rows, std::size_t cols)
      : cols_(cols), bits_((rows * cols + 63) / 64, 0) {}
  void set(std::size_t r, std::size_t c) {
    const std::size_t idx = r * cols_ + c;
    bits_[idx >> 6] |= (std::uint64_t{1} << (idx & 63));
  }
  [[nodiscard]] bool get(std::size_t r, std::size_t c) const {
    const std::size_t idx = r * cols_ + c;
    return (bits_[idx >> 6] >> (idx & 63)) & 1;
  }

 private:
  std::size_t cols_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace

Result solve_fptas(std::span<const Item> items, double capacity, double eps) {
  if (!(eps > 0.0) || eps >= 1.0) {
    throw std::invalid_argument("solve_fptas: eps must be in (0, 1)");
  }
  Result result;
  if (capacity < 0.0) return result;

  // Keep only items that can appear in any solution.
  std::vector<std::size_t> live;
  double vmax = 0.0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].value > 0.0 && items[i].weight <= capacity) {
      live.push_back(i);
      vmax = std::max(vmax, items[i].value);
    }
  }
  if (live.empty()) return result;
  const std::size_t n = live.size();

  // Scale values. OPT >= vmax, and rounding loses < mu per item, so the
  // total loss is < n * mu = eps * vmax <= eps * OPT.
  const double mu = eps * vmax / static_cast<double>(n);
  static const obs::Counter c_calls = obs::counter("knapsack.fptas_calls");
  static const obs::Gauge g_mu = obs::gauge("knapsack.fptas_scale_mu");
  c_calls.inc();
  g_mu.set(mu);
  std::vector<std::uint64_t> sv(n);
  std::uint64_t total_sv = 0;
  for (std::size_t p = 0; p < n; ++p) {
    sv[p] = static_cast<std::uint64_t>(std::floor(items[live[p]].value / mu));
    total_sv += sv[p];
  }

  const std::size_t cols = static_cast<std::size_t>(total_sv) + 1;
  if (n * cols > (kMaxDpCells << 3)) {
    throw std::invalid_argument("solve_fptas: scaled DP table too large");
  }
  static const obs::Counter c_cells = obs::counter("knapsack.fptas_cells");
  c_cells.add(static_cast<std::uint64_t>(n) * cols);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> min_weight(cols, kInf);
  min_weight[0] = 0.0;
  ChoiceBits take(n, cols);

  std::uint64_t reachable = 0;
  for (std::size_t p = 0; p < n; ++p) {
    const double w = items[live[p]].weight;
    reachable += sv[p];
    for (std::uint64_t val = reachable; val + 1 > 0; --val) {
      if (sv[p] > val) break;
      const double cand = min_weight[val - sv[p]] + w;
      if (cand < min_weight[val]) {
        min_weight[val] = cand;
        take.set(p, val);
      }
    }
  }

  std::uint64_t best_val = 0;
  for (std::uint64_t val = 0; val < cols; ++val) {
    if (min_weight[val] <= capacity) best_val = val;
  }

  std::uint64_t val = best_val;
  for (std::size_t p = n; p-- > 0;) {
    if (take.get(p, val)) {
      const std::size_t i = live[p];
      result.chosen.push_back(i);
      result.value += items[i].value;
      result.weight += items[i].weight;
      val -= sv[p];
    }
  }
  std::sort(result.chosen.begin(), result.chosen.end());
  return result;
}

}  // namespace sectorpack::knapsack
