#include <algorithm>
#include <numeric>

#include "src/knapsack/knapsack.hpp"

namespace sectorpack::knapsack {

namespace {

// Indices sorted by value density (value/weight) descending; zero-weight
// positive-value items first (infinite density), ties broken by value.
std::vector<std::size_t> density_order(std::span<const Item> items) {
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Item& ia = items[a];
    const Item& ib = items[b];
    // Compare va/wa vs vb/wb without dividing: va*wb vs vb*wa (weights >= 0).
    const double lhs = ia.value * ib.weight;
    const double rhs = ib.value * ia.weight;
    if (lhs != rhs) return lhs > rhs;
    return ia.value > ib.value;
  });
  return order;
}

}  // namespace

Result solve_greedy(std::span<const Item> items, double capacity) {
  Result greedy;
  if (capacity < 0.0) return greedy;

  for (std::size_t i : density_order(items)) {
    const Item& it = items[i];
    if (it.value <= 0.0) continue;
    if (greedy.weight + it.weight <= capacity) {
      greedy.weight += it.weight;
      greedy.value += it.value;
      greedy.chosen.push_back(i);
    }
  }

  // Classic 1/2 guarantee: max(density-greedy, best single item) >= OPT/2,
  // because the fractional optimum is at most greedy-prefix + one item.
  Result best_single;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const Item& it = items[i];
    if (it.weight <= capacity && it.value > best_single.value) {
      best_single.value = it.value;
      best_single.weight = it.weight;
      best_single.chosen.assign(1, i);
    }
  }

  Result& best = best_single.value > greedy.value ? best_single : greedy;
  std::sort(best.chosen.begin(), best.chosen.end());
  return std::move(best);
}

double fractional_upper_bound(std::span<const Item> items, double capacity) {
  if (capacity <= 0.0) return 0.0;
  double remaining = capacity;
  double value = 0.0;
  for (std::size_t i : density_order(items)) {
    const Item& it = items[i];
    if (it.value <= 0.0) continue;
    if (it.weight <= remaining) {
      remaining -= it.weight;
      value += it.value;
    } else {
      if (it.weight > 0.0) value += it.value * (remaining / it.weight);
      break;
    }
  }
  return value;
}

}  // namespace sectorpack::knapsack
