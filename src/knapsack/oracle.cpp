#include "src/knapsack/knapsack.hpp"

namespace sectorpack::knapsack {

double Oracle::guarantee() const noexcept {
  switch (kind_) {
    case OracleKind::kExactAuto:
    case OracleKind::kExactDP:
    case OracleKind::kExactBB:
      return 1.0;
    case OracleKind::kGreedy:
      return 0.5;
    case OracleKind::kFptas:
      return 1.0 - eps_;
  }
  return 0.0;  // unreachable
}

Result Oracle::solve(std::span<const Item> items, double capacity) const {
  switch (kind_) {
    case OracleKind::kExactAuto:
      return solve_exact_auto(items, capacity);
    case OracleKind::kExactDP:
      return solve_exact_dp(items, capacity);
    case OracleKind::kExactBB:
      return solve_bb(items, capacity);
    case OracleKind::kGreedy:
      return solve_greedy(items, capacity);
    case OracleKind::kFptas:
      return solve_fptas(items, capacity, eps_);
  }
  return {};  // unreachable
}

const char* Oracle::name() const noexcept {
  switch (kind_) {
    case OracleKind::kExactAuto:
      return "exact";
    case OracleKind::kExactDP:
      return "exact-dp";
    case OracleKind::kExactBB:
      return "exact-bb";
    case OracleKind::kGreedy:
      return "greedy";
    case OracleKind::kFptas:
      return "fptas";
  }
  return "?";
}

}  // namespace sectorpack::knapsack
