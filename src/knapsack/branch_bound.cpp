#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/knapsack/knapsack.hpp"

namespace sectorpack::knapsack {

namespace {

struct BBState {
  std::span<const Item> items;       // reordered by density
  std::vector<std::size_t> order;    // original index per position
  double capacity = 0.0;
  std::uint64_t node_limit = 0;
  std::uint64_t nodes = 0;
  core::Deadline deadline;
  bool stopped = false;  // deadline expired: unwind, keep the incumbent
  double best_value = 0.0;
  std::vector<bool> cur;   // position -> taken
  std::vector<bool> best;  // best assignment found

  // Poll the deadline every 1024 nodes (including node 0, so an already-
  // expired deadline stops before any search).
  static constexpr std::uint64_t kCheckMask = 1023;

  // Fractional bound on positions [pos, n) with `room` capacity left.
  [[nodiscard]] double bound(std::size_t pos, double room) const {
    double b = 0.0;
    for (std::size_t p = pos; p < order.size(); ++p) {
      const Item& it = items[order[p]];
      if (it.value <= 0.0) continue;
      if (it.weight <= room) {
        room -= it.weight;
        b += it.value;
      } else {
        if (it.weight > 0.0) b += it.value * (room / it.weight);
        break;
      }
    }
    return b;
  }

  void dfs(std::size_t pos, double value, double room) {
    if (stopped) return;
    if ((nodes & kCheckMask) == 0 && deadline.expired()) {
      stopped = true;
      return;
    }
    if (++nodes > node_limit) {
      throw std::runtime_error("solve_bb: node limit exceeded");
    }
    if (value > best_value) {
      best_value = value;
      best = cur;
    }
    if (pos == order.size() || room <= 0.0) return;
    if (value + bound(pos, room) <= best_value) return;  // prune

    const Item& it = items[order[pos]];
    // Branch "take" first: density order makes this the promising branch.
    if (it.weight <= room && it.value > 0.0) {
      cur[pos] = true;
      dfs(pos + 1, value + it.value, room - it.weight);
      cur[pos] = false;
    }
    dfs(pos + 1, value, room);
  }
};

}  // namespace

Result solve_bb(std::span<const Item> items, double capacity,
                std::uint64_t node_limit, const core::Deadline& deadline) {
  Result result;
  if (capacity < 0.0 || items.empty()) return result;

  BBState st;
  st.items = items;
  st.capacity = capacity;
  st.node_limit = node_limit;
  st.deadline = deadline;
  st.order.resize(items.size());
  std::iota(st.order.begin(), st.order.end(), std::size_t{0});
  std::sort(st.order.begin(), st.order.end(),
            [&](std::size_t a, std::size_t b) {
              const double lhs = items[a].value * items[b].weight;
              const double rhs = items[b].value * items[a].weight;
              if (lhs != rhs) return lhs > rhs;
              return items[a].value > items[b].value;
            });
  st.cur.assign(items.size(), false);
  st.best.assign(items.size(), false);
  st.dfs(0, 0.0, capacity);
  if (st.stopped) core::note_expired("knapsack_bb");

  for (std::size_t p = 0; p < st.order.size(); ++p) {
    if (st.best[p]) {
      const std::size_t i = st.order[p];
      result.chosen.push_back(i);
      result.value += items[i].value;
      result.weight += items[i].weight;
    }
  }
  std::sort(result.chosen.begin(), result.chosen.end());
  return result;
}

}  // namespace sectorpack::knapsack
