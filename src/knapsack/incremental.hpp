#pragma once
// Incremental window evaluation for the angular-sweep solvers.
//
// The sweep solvers (single::best_window*, the sector greedy/local-search
// rounds) evaluate a knapsack over every candidate window of a rotating
// arc. Adjacent windows differ by O(1) customers (geom::WindowSweep::delta),
// so re-solving each window from scratch wastes almost all of its work.
// IncrementalOracle maintains, under add/remove membership updates:
//
//   * O(1)      value/weight sums of the current members,
//   * O(log n)  the fractional (LP) upper bound on the best packing, via
//               Fenwick trees indexed by global density rank (the
//               "value-indexed monotone structure": prefix weight is
//               monotone in density rank, so the Dantzig prefix is found by
//               binary descent instead of a sort per window),
//   * O(1)      an order-independent 64-bit fingerprint of the member set
//               (sum of mixed per-item ids, exact under add/remove).
//
// Exact packings still go through the configured Oracle as a batch re-solve
// -- DP/branch-and-bound/FPTAS results depend on item order, and presenting
// the materialized window keeps outputs bit-identical to the non-
// incremental path -- but the caller only pays for it when the LP bound
// says the window can still beat the incumbent (the "re-solve budget":
// sum-skip, then bound-skip, then memo lookup, then solve). OracleCache
// memoizes solved windows by fingerprint so identical windows recur for
// free across greedy rounds and local-search passes.

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/core/sync.hpp"
#include "src/knapsack/knapsack.hpp"

namespace sectorpack::knapsack {

/// Mixes a stable id into a 64-bit fingerprint contribution (splitmix64
/// finalizer). Member-set fingerprints are wrapping sums of these, so they
/// are order-independent and exactly reversible under remove().
[[nodiscard]] std::uint64_t fingerprint_mix(std::uint64_t id) noexcept;

/// Thread-safe memo of solved windows, keyed by member-set fingerprint.
/// Entries store chosen items as the caller's *stable ids*, so hits are
/// valid across calls whose local item numbering differs (e.g. successive
/// greedy rounds filtering the unserved set). A hit returns exactly what
/// re-solving would: the underlying oracle is deterministic on a fixed
/// member set, and window member order (CCW from the leading edge) is a
/// function of the member set alone. Insertion stops at a size cap rather
/// than evicting; hit/miss totals feed the `oracle.cache.*` counters.
class OracleCache {
 public:
  struct Entry {
    double value = 0.0;
    double weight = 0.0;
    std::vector<std::size_t> chosen_ids;  // ascending stable ids
  };

  /// Copies the entry for `key` into `*out` if present.
  [[nodiscard]] bool lookup(std::uint64_t key, Entry* out) const;
  void store(std::uint64_t key, Entry entry);

  [[nodiscard]] std::size_t size() const;

  static constexpr std::size_t kMaxEntries = std::size_t{1} << 20;

 private:
  mutable core::Mutex mu_;
  std::unordered_map<std::uint64_t, Entry> map_ SP_GUARDED_BY(mu_);
};

/// Per-scan tallies of how windows were disposed of; merged into the obs
/// counters in one shot (per scan, not per window) by the caller.
struct IncrementalStats {
  std::uint64_t skipped_by_sum = 0;    // value_sum() <= incumbent
  std::uint64_t skipped_by_bound = 0;  // upper_bound() <= incumbent
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t solves = 0;  // batch oracle.solve() calls (== cache_misses
                             // when a cache is attached)
};

/// Membership-incremental evaluation of one (capacity, oracle) pair over a
/// fixed universe of items. Construction sorts the universe once by the
/// greedy density order; copies are cheap-ish (O(n)) and share no mutable
/// state, so parallel sweep chunks clone a prototype instead of re-sorting.
class IncrementalOracle {
 public:
  /// `ids`, when non-empty, gives a strictly ascending stable id per
  /// universe item (instance customer index); empty means ids are the
  /// universe indices themselves. Spans must outlive the oracle.
  IncrementalOracle(std::span<const Item> universe, double capacity,
                    const Oracle& oracle, OracleCache* cache = nullptr,
                    std::span<const std::size_t> ids = {});

  /// Add/remove universe item `i` to/from the current member set. Adding a
  /// present item or removing an absent one is undefined (asserted).
  void add(std::size_t i);
  void remove(std::size_t i);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  /// Sum of member values -- an upper bound on any packing. O(1).
  [[nodiscard]] double value_sum() const noexcept { return vsum_; }
  [[nodiscard]] double weight_sum() const noexcept { return wsum_; }

  /// Fractional (Dantzig) upper bound on the best packing of the current
  /// members into the capacity: greedy density prefix plus one fractional
  /// item, computed by Fenwick descent in O(log n). Always >= the value any
  /// Oracle kind can return for this member set.
  [[nodiscard]] double upper_bound() const noexcept;

  /// Order-independent fingerprint of the current member set.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Batch-solve the current member set, presented in `members` order
  /// (must list exactly the current members; the caller walks windows so it
  /// owns the canonical CCW order). Returns chosen as universe indices,
  /// ascending. Consults/feeds the cache when one is attached.
  [[nodiscard]] Result solve(std::span<const std::size_t> members,
                             IncrementalStats* stats);

 private:
  void fenwick_update(std::size_t slot, double dw, double dv, std::int64_t dc);

  std::span<const Item> universe_;
  std::span<const std::size_t> ids_;
  double capacity_;
  Oracle oracle_;
  OracleCache* cache_;

  std::vector<std::uint32_t> slot_of_;   // universe idx -> density rank
  std::vector<std::uint32_t> item_at_;   // density rank -> universe idx
  std::vector<std::uint64_t> id_mix_;    // universe idx -> fingerprint term
  // Fenwick trees over density ranks (1-indexed), members only; items with
  // value <= 0 never enter (they cannot raise the LP bound).
  std::vector<double> fen_w_;
  std::vector<double> fen_v_;
  std::vector<std::int64_t> fen_c_;
  std::size_t top_bit_ = 0;

  std::vector<std::uint8_t> member_;
  std::size_t count_ = 0;
  std::size_t positive_count_ = 0;  // members with value > 0 (in the trees)
  double vsum_ = 0.0;
  double wsum_ = 0.0;
  std::uint64_t fp_ = 0;

  std::vector<Item> scratch_items_;
};

}  // namespace sectorpack::knapsack
