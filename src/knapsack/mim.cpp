#include <algorithm>
#include <stdexcept>

#include "src/knapsack/knapsack.hpp"

namespace sectorpack::knapsack {

namespace {

struct HalfEntry {
  double weight;
  double value;
  std::uint32_t mask;  // subset of the half's items
};

// All 2^m subset (weight, value, mask) triples of items[pos[0..m)).
std::vector<HalfEntry> enumerate_half(std::span<const Item> items,
                                      std::span<const std::size_t> pos) {
  const std::size_t m = pos.size();
  std::vector<HalfEntry> entries(std::size_t{1} << m);
  entries[0] = {0.0, 0.0, 0};
  for (std::size_t b = 0; b < m; ++b) {
    const Item& it = items[pos[b]];
    const std::size_t lo = std::size_t{1} << b;
    for (std::size_t s = 0; s < lo; ++s) {
      entries[lo + s] = {entries[s].weight + it.weight,
                         entries[s].value + it.value,
                         entries[s].mask | (std::uint32_t{1} << b)};
    }
  }
  return entries;
}

}  // namespace

Result solve_mim(std::span<const Item> items, double capacity) {
  if (items.size() > kMaxMimItems) {
    throw std::invalid_argument("solve_mim: too many items");
  }
  Result result;
  if (capacity < 0.0) return result;

  // Drop items that can never be packed; zero/negative values are dropped
  // too (never in an optimal solution for a maximization with w >= 0).
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].weight <= capacity && items[i].value > 0.0) {
      live.push_back(i);
    }
  }
  if (live.empty()) return result;

  const std::size_t half = live.size() / 2;
  const std::span<const std::size_t> pos_a{live.data(), half};
  const std::span<const std::size_t> pos_b{live.data() + half,
                                           live.size() - half};

  std::vector<HalfEntry> a = enumerate_half(items, pos_a);
  std::vector<HalfEntry> b = enumerate_half(items, pos_b);

  // Pareto-filter B by weight: after sorting, keep a running max of value
  // so b_best[i] is the best value achievable with weight <= b[i].weight.
  std::sort(b.begin(), b.end(), [](const HalfEntry& x, const HalfEntry& y) {
    return x.weight < y.weight;
  });
  std::vector<HalfEntry> pareto;
  pareto.reserve(b.size());
  double best_value = -1.0;
  for (const HalfEntry& e : b) {
    if (e.value > best_value) {
      best_value = e.value;
      pareto.push_back(e);
    }
  }

  double best = -1.0;
  std::uint32_t best_mask_a = 0;
  std::uint32_t best_mask_b = 0;
  for (const HalfEntry& ea : a) {
    if (ea.weight > capacity) continue;
    const double room = capacity - ea.weight;
    // Largest pareto entry with weight <= room.
    auto it = std::upper_bound(
        pareto.begin(), pareto.end(), room,
        [](double r, const HalfEntry& e) { return r < e.weight; });
    if (it == pareto.begin()) continue;
    --it;
    const double total = ea.value + it->value;
    if (total > best) {
      best = total;
      best_mask_a = ea.mask;
      best_mask_b = it->mask;
    }
  }
  if (best < 0.0) return result;

  for (std::size_t p = 0; p < pos_a.size(); ++p) {
    if (best_mask_a & (std::uint32_t{1} << p)) {
      result.chosen.push_back(pos_a[p]);
    }
  }
  for (std::size_t p = 0; p < pos_b.size(); ++p) {
    if (best_mask_b & (std::uint32_t{1} << p)) {
      result.chosen.push_back(pos_b[p]);
    }
  }
  std::sort(result.chosen.begin(), result.chosen.end());
  for (std::size_t i : result.chosen) {
    result.value += items[i].value;
    result.weight += items[i].weight;
  }
  return result;
}

}  // namespace sectorpack::knapsack
