#include "src/knapsack/incremental.hpp"

#include <algorithm>
#include <numeric>

#include "src/core/contract.hpp"

namespace sectorpack::knapsack {

std::uint64_t fingerprint_mix(std::uint64_t id) noexcept {
  std::uint64_t z = id + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool OracleCache::lookup(std::uint64_t key, Entry* out) const {
  const core::LockGuard lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  *out = it->second;
  return true;
}

void OracleCache::store(std::uint64_t key, Entry entry) {
  const core::LockGuard lock(mu_);
  if (map_.size() >= kMaxEntries) return;  // full: stop memoizing, stay correct
  map_.emplace(key, std::move(entry));
}

std::size_t OracleCache::size() const {
  const core::LockGuard lock(mu_);
  return map_.size();
}

IncrementalOracle::IncrementalOracle(std::span<const Item> universe,
                                     double capacity, const Oracle& oracle,
                                     OracleCache* cache,
                                     std::span<const std::size_t> ids)
    : universe_(universe),
      ids_(ids),
      capacity_(capacity),
      oracle_(oracle),
      cache_(cache) {
  const std::size_t n = universe.size();
  SP_ASSERT(ids_.empty() || ids_.size() == n);
  // Same density order as knapsack::solve_greedy / fractional_solve
  // (cross-multiplied density desc, value desc), with the universe index as
  // a final tie-break so the order is total and deterministic.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), std::uint32_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const Item& ia = universe[a];
              const Item& ib = universe[b];
              const double lhs = ia.value * ib.weight;
              const double rhs = ib.value * ia.weight;
              if (lhs != rhs) return lhs > rhs;
              if (ia.value != ib.value) return ia.value > ib.value;
              return a < b;
            });
  item_at_ = std::move(order);
  slot_of_.resize(n);
  for (std::size_t r = 0; r < n; ++r) slot_of_[item_at_[r]] = static_cast<std::uint32_t>(r);

  id_mix_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    id_mix_[i] = fingerprint_mix(ids_.empty() ? i : ids_[i]);
  }

  fen_w_.assign(n + 1, 0.0);
  fen_v_.assign(n + 1, 0.0);
  fen_c_.assign(n + 1, 0);
  top_bit_ = 1;
  while (top_bit_ * 2 <= n) top_bit_ *= 2;

  member_.assign(n, 0);
}

void IncrementalOracle::fenwick_update(std::size_t slot, double dw, double dv,
                                       std::int64_t dc) {
  for (std::size_t i = slot + 1; i < fen_w_.size(); i += i & (~i + 1)) {
    fen_w_[i] += dw;
    fen_v_[i] += dv;
    fen_c_[i] += dc;
  }
}

void IncrementalOracle::add(std::size_t i) {
  SP_ASSERT(i < universe_.size() && !member_[i]);
  member_[i] = 1;
  const Item& it = universe_[i];
  vsum_ += it.value;
  wsum_ += it.weight;
  fp_ += id_mix_[i];
  ++count_;
  if (it.value > 0.0) {
    ++positive_count_;
    fenwick_update(slot_of_[i], it.weight, it.value, 1);
  }
}

void IncrementalOracle::remove(std::size_t i) {
  SP_ASSERT(i < universe_.size() && member_[i]);
  member_[i] = 0;
  const Item& it = universe_[i];
  vsum_ -= it.value;
  wsum_ -= it.weight;
  fp_ -= id_mix_[i];
  --count_;
  if (it.value > 0.0) {
    --positive_count_;
    fenwick_update(slot_of_[i], -it.weight, -it.value, -1);
  }
}

double IncrementalOracle::upper_bound() const noexcept {
  if (capacity_ <= 0.0 || count_ == 0) return 0.0;
  // Largest density-rank prefix whose member weight fits. Prefix weight is
  // monotone (weights >= 0), so this is exactly the Dantzig walk's stopping
  // point, found by binary descent instead of a per-window sort.
  std::size_t pos = 0;
  double w = 0.0;
  double v = 0.0;
  std::int64_t c = 0;
  for (std::size_t bit = top_bit_; bit > 0; bit >>= 1) {
    const std::size_t next = pos + bit;
    if (next >= fen_w_.size()) continue;
    const double nw = w + fen_w_[next];
    if (nw <= capacity_) {
      pos = next;
      w = nw;
      v += fen_v_[next];
      c += fen_c_[next];
    }
  }
  const double remaining = capacity_ - w;
  if (remaining > 0.0 &&
      c < static_cast<std::int64_t>(positive_count_)) {
    // Split item: the (c+1)-th member in density order. By maximality of
    // the prefix its weight exceeds `remaining` > 0 (a fitting next member
    // would have been absorbed by the weight descent).
    std::size_t p2 = 0;
    std::int64_t need = c + 1;
    for (std::size_t bit = top_bit_; bit > 0; bit >>= 1) {
      const std::size_t next = p2 + bit;
      if (next >= fen_c_.size()) continue;
      if (fen_c_[next] < need) {
        need -= fen_c_[next];
        p2 = next;
      }
    }
    const std::size_t i = item_at_[p2];
    SP_ASSERT(member_[i] && universe_[i].value > 0.0);
    const double weight = universe_[i].weight;
    if (weight > remaining) {
      v += universe_[i].value * (remaining / weight);
    } else {
      // Only reachable through floating-point drift between the prefix
      // descent and this item's weight; fall back to counting it whole
      // (still an upper bound).
      v += universe_[i].value;
    }
  }
  return v;
}

std::uint64_t IncrementalOracle::fingerprint() const noexcept {
  return fingerprint_mix(fp_ + 0x9e3779b97f4a7c15ULL *
                                   static_cast<std::uint64_t>(count_));
}

Result IncrementalOracle::solve(std::span<const std::size_t> members,
                                IncrementalStats* stats) {
  SP_ASSERT(members.size() == count_);
  const std::uint64_t key = fingerprint();

  if (cache_ != nullptr) {
    OracleCache::Entry entry;
    if (cache_->lookup(key, &entry)) {
      if (stats != nullptr) ++stats->cache_hits;
      Result res;
      res.value = entry.value;
      res.weight = entry.weight;
      res.chosen.reserve(entry.chosen_ids.size());
      for (std::size_t id : entry.chosen_ids) {
        if (ids_.empty()) {
          res.chosen.push_back(id);
        } else {
          const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
          SP_ASSERT(it != ids_.end() && *it == id);
          res.chosen.push_back(static_cast<std::size_t>(it - ids_.begin()));
        }
      }
      return res;
    }
    if (stats != nullptr) ++stats->cache_misses;
  }

  scratch_items_.clear();
  scratch_items_.reserve(members.size());
  for (std::size_t m : members) {
    SP_ASSERT(member_[m]);
    scratch_items_.push_back(universe_[m]);
  }
  Result res = oracle_.solve(scratch_items_, capacity_);
  if (stats != nullptr) ++stats->solves;
  for (std::size_t& pick : res.chosen) pick = members[pick];
  std::sort(res.chosen.begin(), res.chosen.end());

  if (cache_ != nullptr) {
    OracleCache::Entry entry;
    entry.value = res.value;
    entry.weight = res.weight;
    entry.chosen_ids.reserve(res.chosen.size());
    for (std::size_t pick : res.chosen) {
      entry.chosen_ids.push_back(ids_.empty() ? pick : ids_[pick]);
    }
    cache_->store(key, std::move(entry));
  }
  return res;
}

}  // namespace sectorpack::knapsack
