#pragma once
// Circular (mod 2*pi) angle arithmetic.
//
// Every angle that crosses a module boundary in this library is a plain
// double in radians, normalized into the half-open interval [0, 2*pi).
// All containment predicates are *closed* and tolerate kAngleEps of
// round-off symmetrically, so that a customer sitting exactly on a sector
// edge is consistently considered covered by both the solvers and the
// validator.

#include <cmath>

namespace sectorpack::geom {

inline constexpr double kPi = 3.14159265358979323846264338327950288;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Tolerance for angular comparisons. Chosen so that normalizing and
/// rotating an angle a few thousand times cannot accumulate enough error
/// to flip a predicate on non-degenerate inputs.
inline constexpr double kAngleEps = 1e-9;

/// Map an arbitrary finite angle into [0, 2*pi).
[[nodiscard]] double normalize(double radians) noexcept;

/// Counter-clockwise offset from `from` to `to`, in [0, 2*pi).
/// ccw_delta(a, a) == 0.
[[nodiscard]] double ccw_delta(double from, double to) noexcept;

/// Shortest angular distance between two angles, in [0, pi].
[[nodiscard]] double angular_distance(double a, double b) noexcept;

/// True when the two angles denote the same direction up to kAngleEps
/// (including wrap-around, e.g. 2*pi - 1e-12 vs 0).
[[nodiscard]] bool angles_equal(double a, double b) noexcept;

/// Degrees <-> radians helpers for examples and I/O.
[[nodiscard]] constexpr double deg_to_rad(double deg) noexcept {
  return deg * (kPi / 180.0);
}
[[nodiscard]] constexpr double rad_to_deg(double rad) noexcept {
  return rad * (180.0 / kPi);
}

}  // namespace sectorpack::geom
