#pragma once
// A sector: the coverage region of a directional antenna anchored at the
// origin -- an arc of directions together with a maximum range.

#include "src/geom/arc.hpp"
#include "src/geom/vec2.hpp"

namespace sectorpack::geom {

/// Relative tolerance on radial containment. A customer exactly at range R
/// is covered; r <= R * (1 + kRadiusEps) absorbs round-off from polar
/// conversion.
inline constexpr double kRadiusEps = 1e-12;

/// A (possibly annular) sector: directions in an arc, radii in
/// [min_radius, radius]. min_radius models an antenna's near-field dead
/// zone; the default 0 gives the plain pie-slice sector of the paper.
class Sector {
 public:
  Sector(Arc arc, double radius, double min_radius = 0.0) noexcept
      : arc_(arc), radius_(radius), min_radius_(min_radius) {}
  Sector(double start, double width, double radius,
         double min_radius = 0.0) noexcept
      : arc_(start, width), radius_(radius), min_radius_(min_radius) {}

  [[nodiscard]] const Arc& arc() const noexcept { return arc_; }
  [[nodiscard]] double radius() const noexcept { return radius_; }
  [[nodiscard]] double min_radius() const noexcept { return min_radius_; }

  [[nodiscard]] bool contains(const Polar& p) const noexcept {
    if (p.r > radius_ * (1.0 + kRadiusEps)) return false;
    if (p.r < min_radius_ * (1.0 - kRadiusEps)) return false;
    if (p.r == 0.0) return true;  // origin (only reachable if min_radius 0)
    return arc_.contains(p.theta);
  }

  [[nodiscard]] bool contains(const Vec2& v) const noexcept {
    return contains(to_polar(v));
  }

  /// Area of the (annular) sector: (width/2) * (R^2 - r_min^2).
  [[nodiscard]] double area() const noexcept {
    return 0.5 * arc_.width() *
           (radius_ * radius_ - min_radius_ * min_radius_);
  }

  [[nodiscard]] Sector rotated(double delta) const noexcept {
    return Sector{arc_.rotated(delta), radius_, min_radius_};
  }

 private:
  Arc arc_;
  double radius_;
  double min_radius_;
};

}  // namespace sectorpack::geom
