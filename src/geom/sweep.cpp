#include "src/geom/sweep.hpp"

#include <algorithm>
#include <numeric>

#include "src/geom/polar_grid.hpp"
#include "src/obs/metrics.hpp"

namespace sectorpack::geom {

namespace {

// Kept out of line so the static-init guards and counter calls don't perturb
// codegen of the sweep constructor's sort/two-pointer loops (measured ~5% on
// bench_f5 BM_WindowSweepConstruction when emitted inline).
[[gnu::noinline]] void record_sweep_build(std::size_t directions,
                                          std::size_t windows) {
  static const obs::Counter c_builds = obs::counter("sweep.builds");
  static const obs::Counter c_directions = obs::counter("sweep.directions");
  static const obs::Counter c_windows = obs::counter("sweep.windows");
  c_builds.inc();
  c_directions.add(directions);
  c_windows.add(windows);
}

}  // namespace

std::vector<double> candidate_orientations(std::span<const double> thetas,
                                           double rho, CandidateEdges edges) {
  std::vector<double> cands;
  cands.reserve(thetas.size() * (edges == CandidateEdges::kBoth ? 2 : 1));
  for (double t : thetas) cands.push_back(normalize(t));
  if (edges == CandidateEdges::kBoth) {
    for (double t : thetas) cands.push_back(normalize(t - rho));
  }
  std::sort(cands.begin(), cands.end());
  // Dedup against the last *kept* value, not the adjacent original:
  // angles_equal is not transitive (a ~ b and b ~ c do not imply a ~ c), so
  // std::unique with it has implementation-defined results on runs of
  // near-duplicates. The explicit loop pins the semantics: a candidate is
  // kept iff it differs from the previously kept one by more than kAngleEps,
  // so a drifting chain collapses to every ~eps-th representative instead of
  // (on some implementations) the whole chain.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (kept == 0 || !angles_equal(cands[kept - 1], cands[i])) {
      cands[kept++] = cands[i];
    }
  }
  cands.resize(kept);
  // Wrap-around dedup: last and first can be equal mod 2*pi.
  if (cands.size() > 1 && angles_equal(cands.front(), cands.back())) {
    cands.pop_back();
  }
  return cands;
}

WindowSweep::WindowSweep(std::span<const double> thetas, double rho)
    : rho_(std::clamp(rho, 0.0, kTwoPi)) {
  const std::size_t n = thetas.size();
  if (n == 0) return;

  std::vector<std::size_t> order(n);
  std::vector<double> norm(n);
  for (std::size_t i = 0; i < n; ++i) norm[i] = normalize(thetas[i]);
  // Total order (norm, index): the explicit position tie-break makes the
  // sort deterministic (plain std::sort on norm alone leaves ties in
  // unspecified order), which is what lets the bucketed fast path below
  // reproduce the comparison sort bit-for-bit.
  const auto less = [&](std::size_t a, std::size_t b) {
    return norm[a] < norm[b] || (norm[a] == norm[b] && a < b);
  };
  if (use_spatial_index(n)) {
    // Angular-bucket sort, sharing the polar grid's crossover heuristic:
    // scatter indices into uniform angle buckets (ascending index within a
    // bucket, i.e. stable), then comparison-sort each bucket. The bucket of
    // an angle is monotone in the angle and equal angles share a bucket, so
    // concatenating the sorted buckets yields exactly the total order
    // `less` defines -- same output, ~linear time on the near-uniform
    // angular distributions big instances have.
    std::size_t buckets = 64;
    while (buckets < n / 8 && buckets < 65536) buckets <<= 1;
    const double scale = static_cast<double>(buckets) / kTwoPi;
    std::vector<std::size_t> start(buckets + 1, 0);
    const auto bucket_of = [&](std::size_t i) {
      const std::size_t b = static_cast<std::size_t>(norm[i] * scale);
      return b < buckets ? b : buckets - 1;
    };
    for (std::size_t i = 0; i < n; ++i) ++start[bucket_of(i) + 1];
    for (std::size_t b = 0; b < buckets; ++b) start[b + 1] += start[b];
    std::vector<std::size_t> cursor(start.begin(), start.end() - 1);
    for (std::size_t i = 0; i < n; ++i) order[cursor[bucket_of(i)]++] = i;
    for (std::size_t b = 0; b < buckets; ++b) {
      std::sort(order.begin() + static_cast<std::ptrdiff_t>(start[b]),
                order.begin() + static_cast<std::ptrdiff_t>(start[b + 1]),
                less);
    }
  } else {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), less);
  }

  order2_.resize(2 * n);
  key2_.resize(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    order2_[i] = order[i];
    order2_[i + n] = order[i];
    key2_[i] = norm[order[i]];
    key2_[i + n] = norm[order[i]] + kTwoPi;
  }

  // One window per distinct start angle; duplicated angles share a window.
  alphas_.reserve(n);
  ranges_.reserve(n);
  std::size_t hi = 0;  // two-pointer upper end into [0, 2n)
  for (std::size_t lo = 0; lo < n; ++lo) {
    if (lo > 0 && angles_equal(key2_[lo], key2_[lo - 1])) continue;
    if (hi < lo) hi = lo;
    const double limit = key2_[lo] + rho_ + kAngleEps;
    while (hi < lo + n && key2_[hi] <= limit) ++hi;
    alphas_.push_back(key2_[lo]);
    ranges_.emplace_back(lo, hi - lo);
  }

  record_sweep_build(n, alphas_.size());
}

}  // namespace sectorpack::geom
