#pragma once
// Angular sweep: enumeration of the combinatorially distinct windows of a
// rotating arc of fixed width over a set of directions.
//
// Candidate-orientation lemma. For any arc of width rho and any set of
// directions, and any subset S of directions contained in some placement of
// the arc, there is a placement whose *leading edge* (start angle) coincides
// with a member of S and which still contains all of S: rotate the arc CCW
// until its start hits the member with the smallest CCW offset; all offsets
// shrink but stay non-negative, so no member leaves. Hence for maximization
// problems it suffices to consider the <= n placements whose start lies on
// an input direction. (When trailing-edge alignment is also wanted -- e.g.
// for symmetric enumeration -- BothEdges adds {theta_i - rho}.)

#include <cstddef>
#include <span>
#include <vector>

#include "src/geom/angle.hpp"

namespace sectorpack::geom {

enum class CandidateEdges {
  kLeading,    // {theta_i}: sufficient for subset maximization
  kBoth,       // {theta_i} u {theta_i - rho}
};

/// Sorted, deduplicated (within kAngleEps) candidate start angles for an arc
/// of width `rho` over the given directions.
[[nodiscard]] std::vector<double> candidate_orientations(
    std::span<const double> thetas, double rho,
    CandidateEdges edges = CandidateEdges::kLeading);

/// Membership difference between window w and its predecessor w-1.
/// Both spans view the sweep's internal doubled order array and contain
/// *original* direction indices. Apply `leave` before `enter`: every index
/// in `leave` is a member of window w-1, every index in `enter` is a member
/// of window w, and an index may appear in both (when the window spans
/// nearly the whole circle the leading edge drops a direction in the same
/// step the trailing edge re-admits it) -- processing leave-then-enter keeps
/// a 0/1 membership invariant valid throughout.
struct WindowDelta {
  std::span<const std::size_t> leave;
  std::span<const std::size_t> enter;
};

/// Precomputed sweep of all leading-edge windows. Window w is the arc
/// [alpha(w), alpha(w)+rho]; members(w) are the indices (into the original
/// `thetas` span) of directions inside that closed arc.
///
/// Construction is O(n log n); total member storage is O(n) amortized per
/// window via a doubled sorted array, so iterating all windows touches each
/// member range as a contiguous span with no per-window allocation.
///
/// Callers that evaluate every window should walk the circle with delta()
/// instead of re-materializing members(w): consecutive windows differ by
/// O(1) amortized directions (each sorted position enters once and leaves
/// once over the full sweep), so an incremental evaluation touches O(n)
/// membership updates total instead of O(n) per window.
class WindowSweep {
 public:
  WindowSweep(std::span<const double> thetas, double rho);

  [[nodiscard]] std::size_t num_windows() const noexcept {
    return alphas_.size();
  }
  [[nodiscard]] double alpha(std::size_t w) const noexcept {
    return alphas_[w];
  }
  [[nodiscard]] double rho() const noexcept { return rho_; }

  /// Original indices of the directions inside window w, in CCW order
  /// starting from the window's leading edge.
  [[nodiscard]] std::span<const std::size_t> members(std::size_t w) const {
    const auto& [first, count] = ranges_[w];
    return {order2_.data() + first, count};
  }

  /// Membership delta from window w-1 to window w. Precondition: 1 <= w <
  /// num_windows(). O(1); the spans alias internal storage (valid for the
  /// sweep's lifetime). See WindowDelta for the leave/enter contract.
  [[nodiscard]] WindowDelta delta(std::size_t w) const noexcept {
    const auto& [plo, pcount] = ranges_[w - 1];
    const auto& [lo, count] = ranges_[w];
    const std::size_t phi = plo + pcount;
    const std::size_t hi = lo + count;
    // Positions [plo, phi) were members of w-1, [lo, hi) are members of w.
    // lo and hi are both non-decreasing, so the symmetric difference is the
    // prefix that fell behind the new leading edge and the suffix the
    // advancing trailing edge picked up. When the ranges are disjoint
    // (phi <= lo: the sweep jumped a gap) everything turns over.
    const std::size_t leave_end = phi < lo ? phi : lo;
    const std::size_t enter_begin = phi > lo ? phi : lo;
    return {{order2_.data() + plo, leave_end - plo},
            {order2_.data() + enter_begin, hi - enter_begin}};
  }

  // Sorted-position accessors, shared with callers (e.g. the uncapacitated
  // k-arc DP) that need the sweep's sorted geometry rather than per-window
  // member lists. Positions p in [0, n) are directions in ascending
  // normalized-angle order; positions [n, 2n) repeat them shifted by 2*pi.
  [[nodiscard]] std::size_t num_directions() const noexcept {
    return order2_.size() / 2;
  }
  /// Original index of sorted position p, p in [0, 2n).
  [[nodiscard]] std::size_t sorted_index(std::size_t p) const noexcept {
    return order2_[p];
  }
  /// Normalized angle of sorted position p (+2*pi for p >= n).
  [[nodiscard]] double sorted_angle(std::size_t p) const noexcept {
    return key2_[p];
  }
  /// First sorted position of window w (its leading-edge direction; when
  /// several directions share the start angle, the lowest such position).
  [[nodiscard]] std::size_t window_first(std::size_t w) const noexcept {
    return ranges_[w].first;
  }
  /// One past the last sorted position of window w.
  [[nodiscard]] std::size_t window_end(std::size_t w) const noexcept {
    return ranges_[w].first + ranges_[w].second;
  }

 private:
  double rho_;
  std::vector<std::size_t> order2_;  // sorted indices, duplicated (size 2n)
  std::vector<double> key2_;         // sorted angles, duplicated (+2*pi copy)
  std::vector<double> alphas_;       // unique window start angles, sorted
  std::vector<std::pair<std::size_t, std::size_t>> ranges_;  // (first, count)
};

}  // namespace sectorpack::geom
