#pragma once
// Angular sweep: enumeration of the combinatorially distinct windows of a
// rotating arc of fixed width over a set of directions.
//
// Candidate-orientation lemma. For any arc of width rho and any set of
// directions, and any subset S of directions contained in some placement of
// the arc, there is a placement whose *leading edge* (start angle) coincides
// with a member of S and which still contains all of S: rotate the arc CCW
// until its start hits the member with the smallest CCW offset; all offsets
// shrink but stay non-negative, so no member leaves. Hence for maximization
// problems it suffices to consider the <= n placements whose start lies on
// an input direction. (When trailing-edge alignment is also wanted -- e.g.
// for symmetric enumeration -- BothEdges adds {theta_i - rho}.)

#include <cstddef>
#include <span>
#include <vector>

#include "src/geom/angle.hpp"

namespace sectorpack::geom {

enum class CandidateEdges {
  kLeading,    // {theta_i}: sufficient for subset maximization
  kBoth,       // {theta_i} u {theta_i - rho}
};

/// Sorted, deduplicated (within kAngleEps) candidate start angles for an arc
/// of width `rho` over the given directions.
[[nodiscard]] std::vector<double> candidate_orientations(
    std::span<const double> thetas, double rho,
    CandidateEdges edges = CandidateEdges::kLeading);

/// Precomputed sweep of all leading-edge windows. Window w is the arc
/// [alpha(w), alpha(w)+rho]; members(w) are the indices (into the original
/// `thetas` span) of directions inside that closed arc.
///
/// Construction is O(n log n); total member storage is O(n) amortized per
/// window via a doubled sorted array, so iterating all windows touches each
/// member range as a contiguous span with no per-window allocation.
class WindowSweep {
 public:
  WindowSweep(std::span<const double> thetas, double rho);

  [[nodiscard]] std::size_t num_windows() const noexcept {
    return alphas_.size();
  }
  [[nodiscard]] double alpha(std::size_t w) const noexcept {
    return alphas_[w];
  }
  [[nodiscard]] double rho() const noexcept { return rho_; }

  /// Original indices of the directions inside window w, in CCW order
  /// starting from the window's leading edge.
  [[nodiscard]] std::span<const std::size_t> members(std::size_t w) const {
    const auto& [first, count] = ranges_[w];
    return {order2_.data() + first, count};
  }

 private:
  double rho_;
  std::vector<std::size_t> order2_;  // sorted indices, duplicated (size 2n)
  std::vector<double> alphas_;       // unique window start angles, sorted
  std::vector<std::pair<std::size_t, std::size_t>> ranges_;  // (first, count)
};

}  // namespace sectorpack::geom
