#pragma once
// Circular arcs: the angular footprint of a directional antenna.
//
// An Arc is the set of directions {start + t : 0 <= t <= width} (mod 2*pi),
// with width clamped to [0, 2*pi]. Width 2*pi (or more) is the full circle.
// Arcs are closed sets; membership predicates absorb kAngleEps of noise on
// both edges.

#include <vector>

#include "src/geom/angle.hpp"

namespace sectorpack::geom {

class Arc {
 public:
  /// Full-circle arc.
  Arc() noexcept : start_(0.0), width_(kTwoPi) {}

  /// Arc beginning at `start` (normalized) sweeping CCW by `width`
  /// (clamped into [0, 2*pi]).
  Arc(double start, double width) noexcept;

  [[nodiscard]] double start() const noexcept { return start_; }
  [[nodiscard]] double width() const noexcept { return width_; }
  /// End angle, normalized into [0, 2*pi). For a full circle end()==start().
  [[nodiscard]] double end() const noexcept;

  [[nodiscard]] bool is_full() const noexcept {
    return width_ >= kTwoPi - kAngleEps;
  }
  [[nodiscard]] bool is_empty() const noexcept { return width_ <= kAngleEps; }

  /// Closed containment with symmetric kAngleEps tolerance.
  [[nodiscard]] bool contains(double angle) const noexcept;

  /// True when every direction of `other` lies inside *this (closed).
  [[nodiscard]] bool contains(const Arc& other) const noexcept;

  /// True when the two arcs share at least one direction.
  [[nodiscard]] bool intersects(const Arc& other) const noexcept;

  /// Total angular length of the intersection (0 when disjoint).
  [[nodiscard]] double intersection_length(const Arc& other) const noexcept;

  /// The same arc rotated CCW by `delta`.
  [[nodiscard]] Arc rotated(double delta) const noexcept;

  friend bool operator==(const Arc& a, const Arc& b) noexcept {
    return angles_equal(a.start_, b.start_) &&
           std::abs(a.width_ - b.width_) <= kAngleEps;
  }

 private:
  double start_;  // normalized into [0, 2*pi)
  double width_;  // in [0, 2*pi]
};

/// Total angular measure of the union of `arcs`, in [0, 2*pi].
[[nodiscard]] double union_length(const std::vector<Arc>& arcs);

/// True when the arcs are pairwise interior-disjoint (shared endpoints OK).
[[nodiscard]] bool pairwise_disjoint(const std::vector<Arc>& arcs);

}  // namespace sectorpack::geom
