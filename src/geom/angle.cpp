#include "src/geom/angle.hpp"

namespace sectorpack::geom {

double normalize(double radians) noexcept {
  double a = std::fmod(radians, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  // Two boundary hazards around the multiples of 2*pi:
  //  * a tiny negative input (e.g. -1e-18) survives fmod unchanged, and the
  //    += kTwoPi correction rounds it up to exactly kTwoPi -- outside the
  //    documented half-open range; fold it back to 0.
  //  * fmod of -0.0 (and of exact negative multiples of 2*pi) yields -0.0,
  //    which skips the < 0.0 branch. -0.0 compares inside [0, 2*pi) but
  //    serializes as "-0" and flips signbit-sensitive callers; adding +0.0
  //    rewrites it to +0.0 and is exact for every other value.
  if (a >= kTwoPi) a = 0.0;
  return a + 0.0;
}

double ccw_delta(double from, double to) noexcept {
  return normalize(to - from);
}

double angular_distance(double a, double b) noexcept {
  const double d = ccw_delta(a, b);
  return d <= kPi ? d : kTwoPi - d;
}

bool angles_equal(double a, double b) noexcept {
  return angular_distance(a, b) <= kAngleEps;
}

}  // namespace sectorpack::geom
