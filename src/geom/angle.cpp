#include "src/geom/angle.hpp"

namespace sectorpack::geom {

double normalize(double radians) noexcept {
  double a = std::fmod(radians, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  // fmod of a value extremely close to a multiple of 2*pi can land exactly
  // on kTwoPi after the correction above; fold it back to 0.
  if (a >= kTwoPi) a = 0.0;
  return a;
}

double ccw_delta(double from, double to) noexcept {
  return normalize(to - from);
}

double angular_distance(double a, double b) noexcept {
  const double d = ccw_delta(a, b);
  return d <= kPi ? d : kTwoPi - d;
}

bool angles_equal(double a, double b) noexcept {
  return angular_distance(a, b) <= kAngleEps;
}

}  // namespace sectorpack::geom
