#pragma once
// Polar grid spatial index: angular wedges x annular rings over a point set
// given in polar coordinates.
//
// The solvers repeatedly answer two query shapes against the customer set:
//   - annulus:  which customers have radius in [r_lo, r_hi]?   (in_range)
//   - sector:   which customers does this (annular) sector cover?
// A flat scan is O(n) per query; with n in the millions and O(k^2) queries
// per solve that dominates everything else. The grid buckets customers into
// W uniform angular wedges x R annular rings (ring edges at radius
// quantiles, so the median radius is an edge and clustered workloads --
// ring roads, hotspots -- stay balanced) and answers queries by touching
// only candidate buckets.
//
// Bit-identity contract. Grid queries are *conservative bucket pruning plus
// the exact flat predicate*: candidate buckets are chosen so that every
// point satisfying the query predicate is in some candidate bucket, then
// each candidate is re-tested with the same floating-point comparison the
// flat scan performs, and results are returned in ascending point index --
// the exact vector the flat loop produces. Downstream solver behavior is
// therefore independent of which path ran; the crossover below is purely a
// performance knob. Rings whose full radial extent lies inside the query
// band are appended wholesale (every member provably passes the radial
// predicate), which is where the asymptotic win comes from.
//
// Lifetime: the grid stores *views* of the theta/radius arrays it was built
// over; the caller keeps those arrays alive and unchanged (model::Instance
// is immutable and owns both).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/geom/angle.hpp"
#include "src/geom/sector.hpp"

namespace sectorpack::geom {

/// Global crossover control for every flat-vs-indexed call site. kAuto uses
/// the size threshold below; the force modes pin one path (outputs are
/// bit-identical either way, so this is safe as a process-wide setting --
/// it exists for benchmarks, tests, and the check.sh byte-identity gate).
enum class SpatialIndexMode { kAuto, kForceFlat, kForceIndexed };

void set_spatial_index_mode(SpatialIndexMode mode) noexcept;
[[nodiscard]] SpatialIndexMode spatial_index_mode() noexcept;

/// Crossover threshold: below this many points a flat scan's single pass
/// beats building/probing the grid (the scan is branch-predictable and the
/// grid's candidate sort costs m log m); above it bucket pruning wins.
/// Measured on bench_f7_huge -- the win at 1e6 is >5x, the loss at 1e3 is
/// noise-level, so the exact value is not sensitive.
inline constexpr std::size_t kSpatialIndexMinCustomers = 4096;

/// True when call sites should take the indexed path for n points under the
/// current mode.
[[nodiscard]] bool use_spatial_index(std::size_t n) noexcept;

/// Build deferral under kAuto (model::Instance::spatial_index): an
/// instance's grid is built only after this many queries ran flat, so a
/// one-shot solve never pays the O(n log n) build for a handful of O(n)
/// scans. Ski-rental: by the time the build happens, at most ~this many
/// scans were "wasted", within a constant factor of the offline-optimal
/// choice whatever the final query count turns out to be.
inline constexpr std::uint32_t kGridBuildAfterQueries = 32;

class PolarGrid {
 public:
  /// Build over points (thetas[i], radii[i]). Thetas may be any finite
  /// angles (binning normalizes); radii must be what the query predicates
  /// will be compared against (model::Instance's cached polar radii).
  /// O(n log n): one sort of the radii for quantile ring edges, one
  /// counting sort into cells.
  PolarGrid(std::span<const double> thetas, std::span<const double> radii);

  [[nodiscard]] std::size_t num_points() const noexcept {
    return radii_.size();
  }
  [[nodiscard]] std::size_t num_wedges() const noexcept { return wedges_; }
  [[nodiscard]] std::size_t num_rings() const noexcept { return rings_; }

  /// Point indices of one (ring, wedge) cell, ascending. The cell iterator
  /// primitive the collect_* queries are built on; exposed for tests and
  /// for callers that want custom bucket walks.
  [[nodiscard]] std::span<const std::size_t> cell(std::size_t ring,
                                                  std::size_t wedge) const {
    const std::size_t c = ring * wedges_ + wedge;
    return {items_.data() + cell_start_[c], cell_start_[c + 1] - cell_start_[c]};
  }

  /// All point indices of one ring (its wedge cells concatenated; ascending
  /// only within each cell).
  [[nodiscard]] std::span<const std::size_t> ring(std::size_t k) const {
    return {items_.data() + cell_start_[k * wedges_],
            cell_start_[(k + 1) * wedges_] - cell_start_[k * wedges_]};
  }

  /// Indices i with radii[i] <= r_hi && radii[i] >= r_lo -- the exact
  /// comparisons of model::Instance::in_range when the caller passes
  /// r_hi = range * (1 + kRadiusEps), r_lo = min_range * (1 - kRadiusEps).
  /// `out` is cleared and filled ascending.
  void collect_annulus(double r_lo, double r_hi,
                       std::vector<std::size_t>& out) const;

  /// Indices i with sector.contains({thetas[i], radii[i]}) -- the exact
  /// predicate of the flat eligibility scan. `out` is cleared and filled
  /// ascending.
  void collect_sector(const Sector& sector,
                      std::vector<std::size_t>& out) const;

 private:
  [[nodiscard]] std::size_t ring_of(double r) const noexcept;
  [[nodiscard]] std::size_t wedge_of(double theta_normalized) const noexcept;

  std::span<const double> thetas_;
  std::span<const double> radii_;
  std::size_t wedges_ = 0;
  std::size_t rings_ = 0;
  double inv_wedge_width_ = 0.0;
  std::vector<double> ring_edges_;       // rings_+1, edges_[0]=0, last=+inf
  std::vector<std::size_t> cell_start_;  // CSR offsets, ring-major
  std::vector<std::size_t> items_;       // point indices, ascending per cell
  std::vector<std::size_t> origin_;      // indices with radius exactly 0.0
};

}  // namespace sectorpack::geom
