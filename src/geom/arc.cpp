#include "src/geom/arc.hpp"

#include <algorithm>
#include <cmath>

namespace sectorpack::geom {

Arc::Arc(double start, double width) noexcept
    : start_(normalize(start)), width_(std::clamp(width, 0.0, kTwoPi)) {}

double Arc::end() const noexcept { return normalize(start_ + width_); }

bool Arc::contains(double angle) const noexcept {
  if (is_full()) return true;
  const double d = ccw_delta(start_, angle);
  // d is in [0, 2*pi); accept the closed interval [0, width] with symmetric
  // slack. An angle epsilon-before start shows up as d close to 2*pi.
  return d <= width_ + kAngleEps || d >= kTwoPi - kAngleEps;
}

bool Arc::contains(const Arc& other) const noexcept {
  if (is_full()) return true;
  if (other.is_full()) return false;
  if (other.is_empty()) return contains(other.start());
  const double d = ccw_delta(start_, other.start_);
  const double offset = (d >= kTwoPi - kAngleEps) ? 0.0 : d;
  return offset + other.width_ <= width_ + kAngleEps;
}

bool Arc::intersects(const Arc& other) const noexcept {
  return contains(other.start_) || contains(other.end()) ||
         other.contains(start_) || other.contains(end());
}

double Arc::intersection_length(const Arc& other) const noexcept {
  if (is_full()) return other.width_;
  if (other.is_full()) return width_;
  // The intersection of two circular arcs is at most two disjoint pieces.
  // Piece 1: starts at other.start if we contain it; piece 2: starts at our
  // start if the other contains it. Measure both and avoid double counting.
  double total = 0.0;
  const double d_ab = ccw_delta(start_, other.start_);
  if (d_ab <= width_ || d_ab >= kTwoPi - kAngleEps) {
    const double off = (d_ab >= kTwoPi - kAngleEps) ? 0.0 : d_ab;
    total += std::min(width_ - off, other.width_);
  }
  const double d_ba = ccw_delta(other.start_, start_);
  if ((d_ba <= other.width_ && d_ba > kAngleEps) ) {
    // Our start lies strictly inside the other arc: a second overlap piece
    // starting at our start (this is also the *only* piece when the other
    // arc's start is not inside us).
    total += std::min(other.width_ - d_ba, width_);
  }
  return std::min(total, std::min(width_, other.width_));
}

Arc Arc::rotated(double delta) const noexcept {
  return Arc{start_ + delta, width_};
}

double union_length(const std::vector<Arc>& arcs) {
  // Sweep over edge events. Split arcs that wrap through 2*pi into two
  // linear intervals on [0, 2*pi] and merge.
  std::vector<std::pair<double, double>> ivals;
  ivals.reserve(arcs.size() + 1);
  for (const Arc& a : arcs) {
    if (a.is_empty()) continue;
    if (a.is_full()) return kTwoPi;
    const double s = a.start();
    const double e = s + a.width();
    if (e <= kTwoPi) {
      ivals.emplace_back(s, e);
    } else {
      ivals.emplace_back(s, kTwoPi);
      ivals.emplace_back(0.0, e - kTwoPi);
    }
  }
  if (ivals.empty()) return 0.0;
  std::sort(ivals.begin(), ivals.end());
  double covered = 0.0;
  double cur_lo = ivals.front().first;
  double cur_hi = ivals.front().second;
  for (std::size_t i = 1; i < ivals.size(); ++i) {
    const auto& [lo, hi] = ivals[i];
    if (lo <= cur_hi) {
      cur_hi = std::max(cur_hi, hi);
    } else {
      covered += cur_hi - cur_lo;
      cur_lo = lo;
      cur_hi = hi;
    }
  }
  covered += cur_hi - cur_lo;
  return std::min(covered, kTwoPi);
}

bool pairwise_disjoint(const std::vector<Arc>& arcs) {
  double total = 0.0;
  for (const Arc& a : arcs) total += a.width();
  // Interiors are disjoint iff no angular measure is lost in the union.
  return union_length(arcs) >= total - kAngleEps * double(arcs.size() + 1);
}

}  // namespace sectorpack::geom
