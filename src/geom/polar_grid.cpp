#include "src/geom/polar_grid.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "src/obs/metrics.hpp"

namespace sectorpack::geom {

namespace {

std::atomic<SpatialIndexMode> g_spatial_mode{SpatialIndexMode::kAuto};

// Out of line for the same reason as record_sweep_build: keep static-init
// guards and counter calls away from the query loops' codegen.
[[gnu::noinline]] void record_grid_build(std::size_t points,
                                         std::size_t wedges,
                                         std::size_t rings) {
  static const obs::Counter c_builds = obs::counter("grid.builds");
  static const obs::Counter c_points = obs::counter("grid.points");
  static const obs::Counter c_cells = obs::counter("grid.cells");
  c_builds.inc();
  c_points.add(points);
  c_cells.add(wedges * rings);
}

[[gnu::noinline]] void record_annulus_query(std::size_t tested,
                                            std::size_t results) {
  static const obs::Counter c_queries = obs::counter("grid.queries.annulus");
  static const obs::Counter c_tested = obs::counter("grid.candidates");
  static const obs::Counter c_results = obs::counter("grid.results");
  c_queries.inc();
  c_tested.add(tested);
  c_results.add(results);
}

[[gnu::noinline]] void record_sector_query(std::size_t tested,
                                           std::size_t results) {
  static const obs::Counter c_queries = obs::counter("grid.queries.sector");
  static const obs::Counter c_tested = obs::counter("grid.candidates");
  static const obs::Counter c_results = obs::counter("grid.results");
  c_queries.inc();
  c_tested.add(tested);
  c_results.add(results);
}

std::size_t next_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

// sp-sync: relaxed config knob; set once at CLI startup before solving
// begins, and a reader seeing the old mode momentarily would only take the
// (equally correct, byte-identical) other query path.
void set_spatial_index_mode(SpatialIndexMode mode) noexcept {
  g_spatial_mode.store(mode, std::memory_order_relaxed);
}

SpatialIndexMode spatial_index_mode() noexcept {
  return g_spatial_mode.load(std::memory_order_relaxed);
}

bool use_spatial_index(std::size_t n) noexcept {
  switch (spatial_index_mode()) {
    case SpatialIndexMode::kForceFlat: return false;
    case SpatialIndexMode::kForceIndexed: return n > 0;
    case SpatialIndexMode::kAuto: break;
  }
  return n >= kSpatialIndexMinCustomers;
}

PolarGrid::PolarGrid(std::span<const double> thetas,
                     std::span<const double> radii)
    : thetas_(thetas), radii_(radii) {
  const std::size_t n = radii.size();

  // Auto-tuning. Wedges: ~sqrt(n), power of two so the candidate-wedge walk
  // of narrow arcs stays short relative to a whole ring. Rings: keep mean
  // cell occupancy around 8 points -- boundary rings are scanned in full by
  // annulus queries, so ring thickness (n / rings) bounds the per-query
  // candidate count and directly sets the indexed-vs-flat ratio for thin
  // radial bands; quantile edges (below) make the occupancy hold for
  // clustered radii too. The clamps keep degenerate sizes sane: tiny
  // inputs only reach here under kForceIndexed.
  wedges_ = std::clamp<std::size_t>(next_pow2(static_cast<std::size_t>(
                                        std::sqrt(static_cast<double>(n)))),
                                    8, 1024);
  const std::size_t target_rings =
      std::clamp<std::size_t>(n / (wedges_ * 8), 4, 256);
  inv_wedge_width_ = static_cast<double>(wedges_) / kTwoPi;

  // Ring edges at radius quantiles: edge k is the k/R-quantile of the
  // (finite) radii, so the median radius is the middle edge and every ring
  // holds ~n/R points whatever the radial distribution. Duplicate quantiles
  // (mass concentrated at one radius) collapse; the sentinel +inf edge
  // catches everything above the top quantile, including non-finite radii
  // (which every query predicate then rejects, exactly as the flat scan
  // does).
  std::vector<double> sorted;
  sorted.reserve(n);
  for (double r : radii_) {
    if (std::isfinite(r) && r >= 0.0) sorted.push_back(r);
  }
  std::sort(sorted.begin(), sorted.end());
  ring_edges_.push_back(0.0);
  for (std::size_t k = 1; k < target_rings && !sorted.empty(); ++k) {
    const double e = sorted[(k * sorted.size()) / target_rings];
    if (e > ring_edges_.back()) ring_edges_.push_back(e);
  }
  ring_edges_.push_back(std::numeric_limits<double>::infinity());
  rings_ = ring_edges_.size() - 1;

  // Counting sort into ring-major cells; filling in ascending point index
  // keeps every cell's list ascending, which is what lets queries return
  // flat-scan order after one final sort of the (small) result set.
  const std::size_t cells = wedges_ * rings_;
  cell_start_.assign(cells + 1, 0);
  std::vector<std::size_t> cell_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double r = radii_[i];
    const double t = thetas_[i];
    const std::size_t w =
        std::isfinite(t) ? wedge_of(normalize(t)) : std::size_t{0};
    cell_of[i] = ring_of(r) * wedges_ + w;
    ++cell_start_[cell_of[i] + 1];
    if (r == 0.0) origin_.push_back(i);
  }
  for (std::size_t c = 0; c < cells; ++c) cell_start_[c + 1] += cell_start_[c];
  items_.resize(n);
  std::vector<std::size_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) items_[cursor[cell_of[i]]++] = i;

  record_grid_build(n, wedges_, rings_);
}

std::size_t PolarGrid::ring_of(double r) const noexcept {
  if (!std::isfinite(r) || r < 0.0) return rings_ - 1;
  const auto first = ring_edges_.begin() + 1;
  return static_cast<std::size_t>(
      std::upper_bound(first, ring_edges_.end(), r) - first);
}

std::size_t PolarGrid::wedge_of(double theta_normalized) const noexcept {
  const std::size_t w =
      static_cast<std::size_t>(theta_normalized * inv_wedge_width_);
  return w < wedges_ ? w : wedges_ - 1;
}

void PolarGrid::collect_annulus(double r_lo, double r_hi,
                                std::vector<std::size_t>& out) const {
  out.clear();
  if (radii_.empty() || !(r_hi >= r_lo)) return;
  const std::size_t k0 = ring_of(std::max(r_lo, 0.0));
  const std::size_t k1 = ring_of(std::max(r_hi, 0.0));
  std::size_t tested = 0;
  for (std::size_t k = k0; k <= k1; ++k) {
    // Interior ring: every member r satisfies edges[k] <= r < edges[k+1],
    // so edges[k] >= r_lo and edges[k+1] <= r_hi prove the whole ring
    // passes. The last ring is never interior (its upper edge is the +inf
    // sentinel and may hold non-finite radii), so it is always re-tested.
    if (k + 1 < rings_ && ring_edges_[k] >= r_lo && ring_edges_[k + 1] <= r_hi) {
      const std::span<const std::size_t> whole = ring(k);
      out.insert(out.end(), whole.begin(), whole.end());
      continue;
    }
    for (std::size_t idx : ring(k)) {
      ++tested;
      if (radii_[idx] <= r_hi && radii_[idx] >= r_lo) out.push_back(idx);
    }
  }
  std::sort(out.begin(), out.end());
  record_annulus_query(tested, out.size());
}

void PolarGrid::collect_sector(const Sector& sector,
                               std::vector<std::size_t>& out) const {
  out.clear();
  if (radii_.empty()) return;
  std::size_t tested = 0;

  // Points exactly at the origin pass Sector::contains regardless of angle
  // (once the radial band admits r == 0), so their wedge is meaningless;
  // test them unconditionally and skip them in the cell walk below.
  for (std::size_t idx : origin_) {
    ++tested;
    if (sector.contains(Polar{thetas_[idx], radii_[idx]})) out.push_back(idx);
  }

  const double band_hi = sector.radius() * (1.0 + kRadiusEps);
  const double band_lo = sector.min_radius() * (1.0 - kRadiusEps);
  const std::size_t k0 = ring_of(std::max(band_lo, 0.0));
  const std::size_t k1 = ring_of(std::max(band_hi, 0.0));

  // Candidate wedges: Arc::contains accepts angles in
  // [start - kAngleEps, start + width + kAngleEps], so cover that span plus
  // slack for wedge_of's floating-point rounding at bucket boundaries (one
  // extra wedge on each side). Conservative only -- every candidate is
  // re-tested with the exact predicate.
  const Arc& arc = sector.arc();
  std::size_t w0 = 0;
  std::size_t nw = wedges_;
  const double coverage = arc.width() + 2.0 * kAngleEps;
  if (!arc.is_full() && coverage < kTwoPi) {
    nw = static_cast<std::size_t>(coverage * inv_wedge_width_) + 3;
    if (nw >= wedges_) {
      nw = wedges_;
      w0 = 0;
    } else {
      w0 = wedge_of(normalize(arc.start() - kAngleEps));
      w0 = (w0 + wedges_ - 1) % wedges_;
      ++nw;
    }
  }

  for (std::size_t k = k0; k <= k1; ++k) {
    for (std::size_t t = 0; t < nw; ++t) {
      std::size_t w = w0 + t;
      if (w >= wedges_) w -= wedges_;
      for (std::size_t idx : cell(k, w)) {
        if (radii_[idx] == 0.0) continue;  // handled via origin_ above
        ++tested;
        if (sector.contains(Polar{thetas_[idx], radii_[idx]})) {
          out.push_back(idx);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  record_sector_query(tested, out.size());
}

}  // namespace sectorpack::geom
