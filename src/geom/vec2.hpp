#pragma once
// Minimal 2-D vector / point type plus Cartesian <-> polar conversion.

#include <cmath>

#include "src/geom/angle.hpp"

namespace sectorpack::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(double s, Vec2 v) noexcept {
    return {s * v.x, s * v.y};
  }
  friend constexpr Vec2 operator*(Vec2 v, double s) noexcept { return s * v; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) noexcept {
    return a.x == b.x && a.y == b.y;
  }

  [[nodiscard]] constexpr double dot(Vec2 o) const noexcept {
    return x * o.x + y * o.y;
  }
  /// z-component of the 3-D cross product; >0 when `o` is CCW of *this.
  [[nodiscard]] constexpr double cross(Vec2 o) const noexcept {
    return x * o.y - y * o.x;
  }
  [[nodiscard]] double norm() const noexcept { return std::hypot(x, y); }
  [[nodiscard]] constexpr double norm2() const noexcept {
    return x * x + y * y;
  }
};

/// Polar coordinates: angle theta in [0, 2*pi), radius r >= 0.
struct Polar {
  double theta = 0.0;
  double r = 0.0;
};

/// Convert a Cartesian point to polar coordinates around the origin.
/// The origin itself maps to theta == 0, r == 0.
[[nodiscard]] inline Polar to_polar(Vec2 v) noexcept {
  const double r = v.norm();
  if (r == 0.0) return {0.0, 0.0};
  return {normalize(std::atan2(v.y, v.x)), r};
}

[[nodiscard]] inline Vec2 from_polar(Polar p) noexcept {
  return {p.r * std::cos(p.theta), p.r * std::sin(p.theta)};
}

[[nodiscard]] inline Vec2 from_polar(double theta, double r) noexcept {
  return from_polar(Polar{theta, r});
}

}  // namespace sectorpack::geom
