#include <algorithm>
#include <cmath>

#include "src/geom/sweep.hpp"
#include "src/single/single.hpp"

namespace sectorpack::single {

bool uniform_demands(std::span<const double> values,
                     std::span<const double> demands) {
  if (demands.empty()) return true;
  const double d0 = demands[0];
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (std::abs(demands[i] - d0) > 1e-12) return false;
    if (std::abs(values[i] - demands[i]) > 1e-12) return false;
  }
  return true;
}

WindowChoice best_window_uniform(std::span<const double> thetas,
                                 double demand, double rho,
                                 double capacity) {
  WindowChoice best;
  if (thetas.empty() || demand <= 0.0 || capacity < demand) return best;

  const auto fit =
      static_cast<std::size_t>(std::floor(capacity / demand + 1e-12));

  const geom::WindowSweep sweep(thetas, rho);
  std::size_t best_count = 0;
  std::size_t best_w = 0;
  for (std::size_t w = 0; w < sweep.num_windows(); ++w) {
    const std::size_t count = std::min(sweep.members(w).size(), fit);
    if (count > best_count) {
      best_count = count;
      best_w = w;
    }
  }
  if (best_count == 0) return best;

  best.alpha = sweep.alpha(best_w);
  best.value = static_cast<double>(best_count) * demand;
  const auto members = sweep.members(best_w);
  best.chosen.assign(members.begin(), members.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              best_count));
  std::sort(best.chosen.begin(), best.chosen.end());
  return best;
}

}  // namespace sectorpack::single
