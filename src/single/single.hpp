#pragma once
// P1 -- packing to one sector.
//
// Fix one antenna (rho, R, c). By the candidate-orientation lemma it
// suffices to test the <= n orientations whose leading edge passes through a
// customer; for each window the served set is a 0/1 knapsack over the
// in-window, in-range customers. Composing the sweep with a knapsack oracle
// of guarantee beta yields a beta-approximation for P1 (the sweep itself is
// lossless), so:
//   exact oracle -> optimal, FPTAS(eps) oracle -> (1-eps)-approx,
//   greedy oracle -> 1/2-approx.

#include <span>

#include "src/core/deadline.hpp"
#include "src/knapsack/incremental.hpp"
#include "src/knapsack/knapsack.hpp"
#include "src/model/solution.hpp"
#include "src/par/thread_pool.hpp"

namespace sectorpack::single {

/// Outcome of scanning all windows of width rho over a customer list.
struct WindowChoice {
  double alpha = 0.0;  // best leading-edge orientation
  double value = 0.0;  // demand served by the best window's packing
  std::vector<std::size_t> chosen;  // indices into the provided lists
  /// False when a deadline expired mid-scan: the choice is the best among
  /// the windows examined, which may not be all of them.
  bool complete = true;
};

/// Scan every candidate window of width `rho` over customers given by
/// parallel arrays (thetas[i], demands[i]) and return the best packing into
/// `capacity` according to `oracle`. Ties broken toward the smallest alpha
/// so results are deterministic. `parallel` distributes windows over a
/// thread pool (identical result, chunk-ordered reduction); `pool` selects
/// the pool, defaulting to the process-global one.
///
/// The scan walks consecutive windows with geom::WindowSweep::delta and a
/// knapsack::IncrementalOracle, so a window only pays for a full oracle
/// solve when its incrementally-maintained LP bound still beats the
/// incumbent; see docs/performance.md. `cache`, when given, memoizes solved
/// windows across calls (greedy rounds, local-search passes) -- `ids` must
/// then map each customer to a stable, strictly ascending id (e.g. its
/// instance index) so fingerprints agree across calls whose filtered
/// customer lists differ.
/// `deadline` is polled once per window chunk; on expiry the scan stops
/// and returns its incumbent with WindowChoice::complete == false.
[[nodiscard]] WindowChoice best_window(std::span<const double> thetas,
                                       std::span<const double> demands,
                                       double rho, double capacity,
                                       const knapsack::Oracle& oracle,
                                       bool parallel = false,
                                       par::ThreadPool* pool = nullptr,
                                       knapsack::OracleCache* cache = nullptr,
                                       std::span<const std::size_t> ids = {},
                                       const core::Deadline& deadline = {});

/// Value-weighted variant: customer i contributes values[i] to the
/// objective while consuming demands[i] of the capacity. The unweighted
/// overload above is equivalent to values == demands.
[[nodiscard]] WindowChoice best_window_weighted(
    std::span<const double> thetas, std::span<const double> values,
    std::span<const double> demands, double rho, double capacity,
    const knapsack::Oracle& oracle, bool parallel = false,
    par::ThreadPool* pool = nullptr, knapsack::OracleCache* cache = nullptr,
    std::span<const std::size_t> ids = {},
    const core::Deadline& deadline = {});

/// Fast path for UNIFORM demands (every customer has demand d): the best
/// packing of a window is simply its min(|window|, floor(capacity/d))
/// cheapest... all-equal customers, so the knapsack disappears and the
/// whole sweep runs in O(n log n) instead of O(n^2) -- exact, not an
/// approximation. Serves the first fitting members in CCW order from the
/// leading edge (any subset of the right size is optimal).
[[nodiscard]] WindowChoice best_window_uniform(std::span<const double> thetas,
                                               double demand, double rho,
                                               double capacity);

/// True when the uniform fast path applies to these customers: all demands
/// equal (within 1e-12) and values equal demands.
[[nodiscard]] bool uniform_demands(std::span<const double> values,
                                   std::span<const double> demands);

struct Config {
  knapsack::Oracle oracle = knapsack::Oracle::exact();
  std::size_t antenna = 0;  // which antenna of the instance to orient
  bool parallel = false;
  core::SolveOptions solve;
};

/// Solve P1 for one antenna of `inst` (others stay at alpha=0, unused).
/// Guarantee: oracle.guarantee() * OPT for that antenna.
[[nodiscard]] model::Solution solve(const model::Instance& inst,
                                    const Config& config = {});

/// Convenience wrappers.
[[nodiscard]] model::Solution solve_exact(const model::Instance& inst);
[[nodiscard]] model::Solution solve_greedy(const model::Instance& inst);
[[nodiscard]] model::Solution solve_fptas(const model::Instance& inst,
                                          double eps);

/// Brute-force reference: additionally tries trailing-edge candidates and
/// midpoints, and uses exhaustive knapsack. For tests (n <= 20).
[[nodiscard]] model::Solution solve_reference(const model::Instance& inst,
                                              std::size_t antenna = 0);

}  // namespace sectorpack::single
