#include <stdexcept>

#include "src/geom/sweep.hpp"
#include "src/single/single.hpp"
#include "src/verify/verify.hpp"

namespace sectorpack::single {

model::Solution solve(const model::Instance& inst, const Config& config) {
  if (config.antenna >= inst.num_antennas()) {
    throw std::invalid_argument("single::solve: antenna index out of range");
  }
  const std::size_t j = config.antenna;
  const model::AntennaSpec& ant = inst.antenna(j);

  // Restrict to in-range customers; keep a map back to instance indices.
  // The radial filter goes through the crossover helper (flat scan or polar
  // grid, identical output) and the gathers read the SoA arrays.
  std::vector<std::size_t> index;
  inst.in_range_customers(j, index);
  std::vector<double> thetas;
  std::vector<double> values;
  std::vector<double> demands;
  thetas.reserve(index.size());
  values.reserve(index.size());
  demands.reserve(index.size());
  for (std::size_t i : index) {
    thetas.push_back(inst.theta(i));
    values.push_back(inst.value(i));
    demands.push_back(inst.demand(i));
  }

  // Uniform-demand fast path: exact and O(n log n), valid whenever an
  // exact packing is requested and all demands (== values) coincide. It
  // always completes, so it never consults the deadline.
  const bool exact_requested = config.oracle.guarantee() >= 1.0;
  const WindowChoice choice =
      (exact_requested && !demands.empty() &&
       uniform_demands(values, demands))
          ? best_window_uniform(thetas, demands[0], ant.rho, ant.capacity)
          : best_window_weighted(thetas, values, demands, ant.rho,
                                 ant.capacity, config.oracle, config.parallel,
                                 nullptr, nullptr, {},
                                 config.solve.deadline);

  model::Solution sol = model::Solution::empty_for(inst);
  sol.alpha[j] = choice.alpha;
  for (std::size_t local : choice.chosen) {
    sol.assign[index[local]] = static_cast<std::int32_t>(j);
  }
  if (!choice.complete) {
    sol.status = model::SolveStatus::kBudgetExhausted;
    core::note_expired("single");
  }
  verify::debug_postcondition(inst, sol, "single.solve");
  return sol;
}

model::Solution solve_exact(const model::Instance& inst) {
  return solve(inst, Config{knapsack::Oracle::exact(), 0, false, {}});
}

model::Solution solve_greedy(const model::Instance& inst) {
  return solve(inst, Config{knapsack::Oracle::greedy(), 0, false, {}});
}

model::Solution solve_fptas(const model::Instance& inst, double eps) {
  return solve(inst, Config{knapsack::Oracle::fptas(eps), 0, false, {}});
}

model::Solution solve_reference(const model::Instance& inst,
                                std::size_t antenna) {
  if (antenna >= inst.num_antennas()) {
    throw std::invalid_argument(
        "single::solve_reference: antenna index out of range");
  }
  const std::size_t j = antenna;
  const model::AntennaSpec& ant = inst.antenna(j);

  std::vector<double> thetas;
  std::vector<double> values;
  std::vector<double> demands;
  std::vector<std::size_t> index;
  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    if (inst.in_range(i, j)) {
      thetas.push_back(inst.theta(i));
      values.push_back(inst.value(i));
      demands.push_back(inst.demand(i));
      index.push_back(i);
    }
  }
  if (thetas.size() > 20) {
    throw std::invalid_argument("single::solve_reference: n > 20");
  }

  // Over-complete candidate set: both edges plus midpoints between
  // consecutive customer angles, so the reference cannot miss an optimum
  // even if the leading-edge lemma were wrong.
  std::vector<double> cands =
      geom::candidate_orientations(thetas, ant.rho, geom::CandidateEdges::kBoth);
  const std::size_t base = cands.size();
  for (std::size_t a = 0; a < base; ++a) {
    const double next = cands[(a + 1) % base];
    const double mid =
        cands[a] + 0.5 * geom::ccw_delta(cands[a], next);
    cands.push_back(geom::normalize(mid));
  }
  if (cands.empty()) cands.push_back(0.0);

  model::Solution best = model::Solution::empty_for(inst);
  double best_value = -1.0;
  std::vector<knapsack::Item> items;
  std::vector<std::size_t> members;
  for (double alpha : cands) {
    const geom::Arc window(alpha, ant.rho);
    items.clear();
    members.clear();
    for (std::size_t local = 0; local < thetas.size(); ++local) {
      if (window.contains(thetas[local])) {
        items.push_back({values[local], demands[local]});
        members.push_back(local);
      }
    }
    const knapsack::Result res =
        knapsack::solve_brute_force(items, ant.capacity);
    if (res.value > best_value) {
      best_value = res.value;
      best = model::Solution::empty_for(inst);
      best.alpha[j] = alpha;
      for (std::size_t pick : res.chosen) {
        best.assign[index[members[pick]]] = static_cast<std::int32_t>(j);
      }
    }
  }
  verify::debug_postcondition(inst, best, "single.reference");
  return best;
}

}  // namespace sectorpack::single
