#include <algorithm>

#include "src/geom/sweep.hpp"
#include "src/par/parallel_for.hpp"
#include "src/single/single.hpp"

namespace sectorpack::single {

namespace {

WindowChoice scan_range(const geom::WindowSweep& sweep,
                        std::span<const double> values,
                        std::span<const double> weights, double capacity,
                        const knapsack::Oracle& oracle, std::size_t begin,
                        std::size_t end) {
  WindowChoice best;
  std::vector<knapsack::Item> items;
  for (std::size_t w = begin; w < end; ++w) {
    const auto members = sweep.members(w);
    items.clear();
    items.reserve(members.size());
    double window_value = 0.0;
    for (std::size_t m : members) {
      items.push_back({values[m], weights[m]});
      window_value += values[m];
    }
    // Cheap skip: even taking every member cannot beat the incumbent.
    if (window_value <= best.value) continue;

    knapsack::Result res = oracle.solve(items, capacity);
    if (res.value > best.value) {
      best.value = res.value;
      best.alpha = sweep.alpha(w);
      best.chosen.clear();
      best.chosen.reserve(res.chosen.size());
      for (std::size_t pick : res.chosen) {
        best.chosen.push_back(members[pick]);
      }
    }
  }
  std::sort(best.chosen.begin(), best.chosen.end());
  return best;
}

// Deterministic combine: higher value wins, ties to the smaller alpha.
WindowChoice better_of(WindowChoice a, WindowChoice b) {
  if (b.value > a.value ||
      (b.value == a.value && !b.chosen.empty() && b.alpha < a.alpha)) {
    return b;
  }
  return a;
}

}  // namespace

WindowChoice best_window_weighted(std::span<const double> thetas,
                                  std::span<const double> values,
                                  std::span<const double> demands, double rho,
                                  double capacity,
                                  const knapsack::Oracle& oracle,
                                  bool parallel, par::ThreadPool* pool) {
  const geom::WindowSweep sweep(thetas, rho);
  const std::size_t nw = sweep.num_windows();
  if (nw == 0) return {};

  if (!parallel) {
    return scan_range(sweep, values, demands, capacity, oracle, 0, nw);
  }
  return par::parallel_reduce<WindowChoice>(
      nw, /*grain=*/8, WindowChoice{},
      [&](std::size_t b, std::size_t e) {
        return scan_range(sweep, values, demands, capacity, oracle, b, e);
      },
      [](WindowChoice a, WindowChoice b) {
        return better_of(std::move(a), std::move(b));
      },
      pool);
}

WindowChoice best_window(std::span<const double> thetas,
                         std::span<const double> demands, double rho,
                         double capacity, const knapsack::Oracle& oracle,
                         bool parallel, par::ThreadPool* pool) {
  return best_window_weighted(thetas, demands, demands, rho, capacity,
                              oracle, parallel, pool);
}

}  // namespace sectorpack::single
