#include <algorithm>

#include "src/geom/sweep.hpp"
#include "src/knapsack/incremental.hpp"
#include "src/obs/metrics.hpp"
#include "src/par/parallel_for.hpp"
#include "src/single/single.hpp"

namespace sectorpack::single {

namespace {

// Per-scan tallies merged into the obs counters once per chunk (not per
// window: the walk must stay branch-light when obs is off).
[[gnu::noinline]] void record_scan(std::uint64_t steps, std::uint64_t enters,
                                   std::uint64_t leaves,
                                   const knapsack::IncrementalStats& stats) {
  static const obs::Counter c_steps = obs::counter("sweep.delta.steps");
  static const obs::Counter c_enter = obs::counter("sweep.delta.enter");
  static const obs::Counter c_leave = obs::counter("sweep.delta.leave");
  static const obs::Counter c_sum = obs::counter("oracle.skip_sum");
  static const obs::Counter c_bound = obs::counter("oracle.skip_bound");
  static const obs::Counter c_hits = obs::counter("oracle.cache.hits");
  static const obs::Counter c_miss = obs::counter("oracle.cache.misses");
  static const obs::Counter c_solves = obs::counter("oracle.solves");
  c_steps.add(steps);
  c_enter.add(enters);
  c_leave.add(leaves);
  c_sum.add(stats.skipped_by_sum);
  c_bound.add(stats.skipped_by_bound);
  c_hits.add(stats.cache_hits);
  c_miss.add(stats.cache_misses);
  c_solves.add(stats.solves);
}

// Walk windows [begin, end) with membership deltas. The prototype carries
// the density index (sorted once per call); each chunk clones it and
// materializes only its first window. A window pays for a batch oracle
// solve only when (a) its running value sum and (b) its O(log n) LP bound
// both still beat the chunk incumbent -- neither skip can discard a window
// the non-incremental scan would have used, because any oracle's value is
// bounded by both.
WindowChoice scan_range(const geom::WindowSweep& sweep,
                        const knapsack::IncrementalOracle& proto,
                        std::size_t begin, std::size_t end,
                        const core::Deadline& deadline) {
  WindowChoice best;
  knapsack::IncrementalOracle inc = proto;
  knapsack::IncrementalStats stats;
  std::uint64_t enters = 0;
  std::uint64_t leaves = 0;
  for (std::size_t m : sweep.members(begin)) inc.add(m);
  enters += sweep.members(begin).size();
  for (std::size_t w = begin; w < end; ++w) {
    // Deadline check per 64-window block; a truncated scan keeps its best
    // window so far and reports incompleteness through `complete`.
    if ((w & 63u) == 0 && deadline.expired()) {
      best.complete = false;
      break;
    }
    if (w > begin) {
      const geom::WindowDelta d = sweep.delta(w);
      for (std::size_t m : d.leave) inc.remove(m);
      for (std::size_t m : d.enter) inc.add(m);
      leaves += d.leave.size();
      enters += d.enter.size();
    }
    if (inc.value_sum() <= best.value) {
      ++stats.skipped_by_sum;
      continue;
    }
    if (inc.upper_bound() <= best.value) {
      ++stats.skipped_by_bound;
      continue;
    }
    knapsack::Result res = inc.solve(sweep.members(w), &stats);
    if (res.value > best.value) {
      best.value = res.value;
      best.alpha = sweep.alpha(w);
      best.chosen = std::move(res.chosen);
    }
  }
  record_scan(end - begin, enters, leaves, stats);
  return best;
}

// Deterministic combine: higher value wins, ties to the smaller alpha.
// Completeness is a property of the whole scan, so it ANDs across chunks
// regardless of which chunk wins.
WindowChoice better_of(WindowChoice a, WindowChoice b) {
  const bool complete = a.complete && b.complete;
  if (b.value > a.value ||
      (b.value == a.value && !b.chosen.empty() && b.alpha < a.alpha)) {
    b.complete = complete;
    return b;
  }
  a.complete = complete;
  return a;
}

}  // namespace

WindowChoice best_window_weighted(std::span<const double> thetas,
                                  std::span<const double> values,
                                  std::span<const double> demands, double rho,
                                  double capacity,
                                  const knapsack::Oracle& oracle,
                                  bool parallel, par::ThreadPool* pool,
                                  knapsack::OracleCache* cache,
                                  std::span<const std::size_t> ids,
                                  const core::Deadline& deadline) {
  const geom::WindowSweep sweep(thetas, rho);
  const std::size_t nw = sweep.num_windows();
  if (nw == 0) return {};

  std::vector<knapsack::Item> universe(thetas.size());
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    universe[i] = {values[i], demands[i]};
  }
  const knapsack::IncrementalOracle proto(universe, capacity, oracle, cache,
                                          ids);

  if (!parallel) {
    return scan_range(sweep, proto, 0, nw, deadline);
  }
  return par::parallel_reduce<WindowChoice>(
      nw, /*grain=*/8, WindowChoice{},
      [&](std::size_t b, std::size_t e) {
        return scan_range(sweep, proto, b, e, deadline);
      },
      [](WindowChoice a, WindowChoice b) {
        return better_of(std::move(a), std::move(b));
      },
      pool);
}

WindowChoice best_window(std::span<const double> thetas,
                         std::span<const double> demands, double rho,
                         double capacity, const knapsack::Oracle& oracle,
                         bool parallel, par::ThreadPool* pool,
                         knapsack::OracleCache* cache,
                         std::span<const std::size_t> ids,
                         const core::Deadline& deadline) {
  return best_window_weighted(thetas, demands, demands, rho, capacity, oracle,
                              parallel, pool, cache, ids, deadline);
}

}  // namespace sectorpack::single
