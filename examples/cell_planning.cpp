// Cell planning: the paper's motivating scenario. A base station must serve
// a city whose subscribers cluster around a few hotspots (malls, campus,
// stadium), with heavy-tailed per-subscriber demand. The operator has k
// directional antennas of fixed beam width and limited backhaul capacity
// per antenna, and wants orientations + admission decisions maximizing
// served demand.
//
//   $ ./cell_planning [num_customers] [num_antennas] [beam_deg] [seed]
//
// Prints a deployment plan (orientation, load, utilization per antenna) for
// the local-search planner and compares against the naive evenly-spaced
// deployment and the certified upper bound.

#include <cstdio>
#include <cstdlib>

#include "src/sectorpack.hpp"

using namespace sectorpack;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;
  const std::size_t k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 6;
  const double beam_deg = argc > 3 ? std::strtod(argv[3], nullptr) : 60.0;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42;

  sim::Rng rng(seed);
  sim::WorkloadConfig wc;
  wc.num_customers = n;
  wc.spatial = sim::Spatial::kHotspots;
  wc.num_hotspots = 4;
  wc.hotspot_sigma = 10.0;
  wc.demand = sim::DemandDist::kParetoInt;
  wc.pareto_alpha = 1.6;
  wc.pareto_cap = 64;

  sim::AntennaConfig ac;
  ac.count = k;
  ac.rho = geom::deg_to_rad(beam_deg);
  ac.range = 130.0;
  ac.capacity_fraction = 0.5;  // capacity covers half the offered demand

  const model::Instance inst = sim::make_instance(wc, ac, rng);
  std::printf("City: %zu subscribers, offered demand %.0f\n",
              inst.num_customers(), inst.total_demand());
  std::printf("Radio: %zu antennas x %.0f deg beam, capacity %.0f each "
              "(total %.0f)\n\n",
              k, beam_deg, inst.antenna(0).capacity, inst.total_capacity());

  const model::Solution naive = sectors::solve_uniform_orientations(inst);
  const model::Solution planned = sectors::solve_local_search(inst);
  const double bound = bounds::orientation_free_bound(inst);

  const double v_naive = model::served_demand(inst, naive);
  const double v_planned = model::served_demand(inst, planned);

  std::printf("Evenly spaced deployment : %7.0f served (%.1f%% of bound)\n",
              v_naive, 100.0 * v_naive / bound);
  std::printf("Planned deployment       : %7.0f served (%.1f%% of bound)\n",
              v_planned, 100.0 * v_planned / bound);
  std::printf("Certified upper bound    : %7.0f\n", bound);
  std::printf("Planning gain            : %+6.1f%%\n\n",
              100.0 * (v_planned - v_naive) / v_naive);

  std::printf("Deployment plan (planned):\n");
  const auto loads = model::antenna_loads(inst, planned);
  std::size_t served_customers = 0;
  for (std::int32_t a : planned.assign) {
    if (a != model::kUnserved) ++served_customers;
  }
  for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
    const double cap = inst.antenna(j).capacity;
    std::printf("  antenna %zu: alpha = %6.1f deg, load %6.0f / %6.0f "
                "(%5.1f%% utilization)\n",
                j, geom::rad_to_deg(planned.alpha[j]), loads[j], cap,
                cap > 0 ? 100.0 * loads[j] / cap : 0.0);
  }
  std::printf("  admitted %zu / %zu subscribers\n", served_customers,
              inst.num_customers());

  const auto report = model::validate(inst, planned);
  std::printf("\nvalidator: %s\n", report.ok ? "plan is feasible" : "ERROR");
  return report.ok ? 0 : 1;
}
