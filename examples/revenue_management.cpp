// Revenue management: value-weighted packing.
//
//   $ ./revenue_management [seed]
//
// Subscribers pay different tariffs: a few enterprise customers are worth
// far more than their traffic volume, and a long tail of flat-rate users
// is worth less. The operator maximizes REVENUE (customer value), while
// antenna capacity is consumed by traffic (demand). This example contrasts
// value-aware planning against demand-blind planning on the same network
// and prints the per-tier admission statistics.

#include <cstdio>
#include <cstdlib>

#include "src/sectorpack.hpp"

using namespace sectorpack;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 23;
  sim::Rng rng(seed);

  // Three tariff tiers.
  struct Tier {
    const char* name;
    std::size_t count;
    double demand_lo, demand_hi;  // traffic
    double value_per_demand;      // tariff multiplier
  };
  const Tier tiers[] = {
      {"enterprise", 12, 2.0, 5.0, 10.0},
      {"premium", 40, 3.0, 8.0, 2.0},
      {"flat-rate", 150, 4.0, 12.0, 0.5},
  };

  model::InstanceBuilder b;
  std::vector<int> tier_of;
  double total_demand = 0.0;
  for (int t = 0; t < 3; ++t) {
    for (std::size_t i = 0; i < tiers[t].count; ++i) {
      const double demand = std::ceil(
          rng.uniform(tiers[t].demand_lo, tiers[t].demand_hi));
      const double value = std::ceil(demand * tiers[t].value_per_demand);
      b.add_weighted_customer_polar(rng.uniform(0.0, geom::kTwoPi),
                                    rng.uniform(5.0, 95.0), demand, value);
      tier_of.push_back(t);
      total_demand += demand;
    }
  }
  const std::size_t k = 4;
  const double capacity = std::floor(0.35 * total_demand / double(k));
  b.add_identical_antennas(k, geom::deg_to_rad(75.0), 120.0, capacity);
  const model::Instance inst = b.build();

  std::printf("Network: %zu subscribers, traffic %.0f, revenue at stake"
              " %.0f\n", inst.num_customers(), inst.total_demand(),
              inst.total_value());
  std::printf("Radio: %zu antennas x 75 deg, capacity %.0f each"
              " (~35%% of traffic)\n\n", k, capacity);

  const model::Solution aware = sectors::solve_local_search(inst);

  // Demand-blind plan: same geometry, values erased.
  model::InstanceBuilder blind_b;
  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    blind_b.add_customer_polar(inst.theta(i), inst.radius(i),
                               inst.demand(i));
  }
  blind_b.add_identical_antennas(k, geom::deg_to_rad(75.0), 120.0, capacity);
  const model::Solution blind =
      sectors::solve_local_search(blind_b.build());
  double blind_revenue = 0.0;
  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    if (blind.assign[i] != model::kUnserved) blind_revenue += inst.value(i);
  }

  const double aware_revenue = model::served_value(inst, aware);
  std::printf("revenue, value-aware plan : %8.0f\n", aware_revenue);
  std::printf("revenue, demand-blind plan: %8.0f\n", blind_revenue);
  std::printf("uplift                    : %+7.1f%%\n\n",
              100.0 * (aware_revenue - blind_revenue) /
                  std::max(blind_revenue, 1.0));

  std::printf("admission by tier (value-aware plan):\n");
  for (int t = 0; t < 3; ++t) {
    std::size_t admitted = 0;
    std::size_t total = 0;
    for (std::size_t i = 0; i < inst.num_customers(); ++i) {
      if (tier_of[i] != t) continue;
      ++total;
      if (aware.assign[i] != model::kUnserved) ++admitted;
    }
    std::printf("  %-10s %3zu / %3zu admitted\n", tiers[t].name, admitted,
                total);
  }
  std::printf("\nvalidator: %s\n",
              model::is_feasible(inst, aware) ? "plan is feasible"
                                              : "ERROR");
  return 0;
}
