// Beam-width study: how wide should the sectors be?
//
//   $ ./beam_width_study [seed]
//
// Narrow beams concentrate capacity on hotspots but miss spread-out demand;
// wide beams see everyone but waste capacity on sparse regions (and, with
// binding capacity, width stops helping entirely once the best window is
// capacity-limited). This example sweeps the beam width for a fixed antenna
// count and prints the served-demand curve with the saturation point -- the
// planning question a radio engineer would actually ask of this library.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/bench_util/table.hpp"
#include "src/sectorpack.hpp"

using namespace sectorpack;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  sim::Rng master(seed);
  sim::WorkloadConfig wc;
  wc.num_customers = 200;
  // Dispersed demand: with subscribers spread over the whole disk, narrow
  // beams are geometry-limited (they simply cannot see most of the city)
  // and wide beams become capacity-limited -- the interesting crossover.
  wc.spatial = sim::Spatial::kUniformDisk;
  wc.demand = sim::DemandDist::kUniformInt;
  wc.demand_min = 1;
  wc.demand_max = 16;

  const std::size_t k = 4;

  bench_util::Table table({"beam(deg)", "served", "frac_of_demand",
                           "frac_of_bound", "best_alpha0(deg)"});

  for (double beam_deg :
       {15.0, 30.0, 45.0, 60.0, 90.0, 120.0, 180.0, 270.0, 360.0}) {
    sim::Rng rng = master;  // same workload for every width
    sim::AntennaConfig ac;
    ac.count = k;
    ac.rho = geom::deg_to_rad(beam_deg);
    ac.range = 130.0;
    ac.capacity_fraction = 0.8;
    const model::Instance inst = sim::make_instance(wc, ac, rng);

    const model::Solution sol = sectors::solve_local_search(inst);
    const double served = model::served_demand(inst, sol);
    const double bound = bounds::orientation_free_bound(inst);
    table.add_row({bench_util::cell(beam_deg, 0), bench_util::cell(served, 0),
                   bench_util::cell(served / inst.total_demand(), 3),
                   bench_util::cell(bound > 0 ? served / bound : 0.0, 3),
                   bench_util::cell(geom::rad_to_deg(sol.alpha[0]), 1)});
  }

  std::printf("Beam-width study: 200 subscribers uniform over the city,"
              " %zu antennas, capacity = 80%% of demand\n\n", k);
  table.print(std::cout);
  std::printf("\nReading: narrow beams are geometry-limited (they cannot"
              " see most of the city);\nserved demand rises with width"
              " until the per-antenna capacity binds (~90 deg here).\n");
  return 0;
}
