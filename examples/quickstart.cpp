// Quickstart: build a small instance by hand, solve it three ways, and
// validate the solutions.
//
//   $ ./quickstart
//
// Demonstrates the minimal API surface: InstanceBuilder, the P3 solvers,
// served_demand, and the validator.

#include <cstdio>

#include "src/sectorpack.hpp"

using namespace sectorpack;

int main() {
  // A base station with two 60-degree antennas, and seven customers.
  const model::Instance inst =
      model::InstanceBuilder{}
          .add_customer_polar(geom::deg_to_rad(10.0), 40.0, 8.0)
          .add_customer_polar(geom::deg_to_rad(25.0), 60.0, 5.0)
          .add_customer_polar(geom::deg_to_rad(40.0), 30.0, 7.0)
          .add_customer_polar(geom::deg_to_rad(180.0), 50.0, 9.0)
          .add_customer_polar(geom::deg_to_rad(200.0), 45.0, 4.0)
          .add_customer_polar(geom::deg_to_rad(215.0), 80.0, 6.0)
          .add_customer_polar(geom::deg_to_rad(300.0), 20.0, 3.0)
          .add_identical_antennas(2, geom::deg_to_rad(60.0), /*range=*/70.0,
                                  /*capacity=*/15.0)
          .build();

  std::printf("Instance: %zu customers, total demand %.1f; "
              "%zu antennas, total capacity %.1f\n\n",
              inst.num_customers(), inst.total_demand(), inst.num_antennas(),
              inst.total_capacity());

  struct Entry {
    const char* name;
    model::Solution sol;
  };
  const Entry entries[] = {
      {"uniform orientations", sectors::solve_uniform_orientations(inst)},
      {"greedy", sectors::solve_greedy(inst)},
      {"local search", sectors::solve_local_search(inst)},
      {"exact", sectors::solve_exact(inst)},
  };

  const double bound = bounds::orientation_free_bound(inst);
  for (const Entry& e : entries) {
    const auto report = model::validate(inst, e.sol);
    std::printf("%-22s served %5.1f / %5.1f  (feasible: %s)\n", e.name,
                model::served_demand(inst, e.sol), bound,
                report.ok ? "yes" : "NO");
    for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
      std::printf("    antenna %zu -> alpha = %6.1f deg\n", j,
                  geom::rad_to_deg(e.sol.alpha[j]));
    }
  }
  return 0;
}
