// Adversarial demo: the worst-case constructions from the approximation
// analysis, shown live.
//
//   $ ./adversarial_demo
//
// 1. The knapsack gadget that pins density-greedy to ~1/2 of optimal.
// 2. The single-antenna embedding of that gadget (sweep + greedy oracle).
// 3. The range-shadowing trap where the multi-antenna greedy strands a far
//    customer and lands at ~1/2, while the exact solver serves everything.

#include <cstdio>

#include "src/sectorpack.hpp"

using namespace sectorpack;

namespace {

void show(const char* name, const model::Instance& inst,
          const model::Solution& sol) {
  std::printf("  %-14s served %6.1f (feasible: %s)\n", name,
              model::served_demand(inst, sol),
              model::is_feasible(inst, sol) ? "yes" : "NO");
}

}  // namespace

int main() {
  std::printf("1) Knapsack gadget, capacity 1000: items {501, 500, 500}\n");
  const sim::KnapsackGadget g = sim::greedy_half_gadget(1000.0);
  const auto greedy = knapsack::solve_greedy(g.items, g.capacity);
  const auto exact = knapsack::solve_exact_auto(g.items, g.capacity);
  std::printf("  greedy packs %.0f, exact packs %.0f -> ratio %.4f"
              " (floor: 0.5)\n\n",
              greedy.value, exact.value, greedy.value / exact.value);

  std::printf("2) Same gadget embedded in a single-antenna instance\n");
  const model::Instance trap1 = sim::single_antenna_trap(1000.0);
  show("greedy oracle", trap1, single::solve_greedy(trap1));
  show("fptas(0.05)", trap1, single::solve_fptas(trap1, 0.05));
  show("exact", trap1, single::solve_exact(trap1));
  std::printf("\n");

  std::printf("3) Range-shadowing trap (k=2, capacities 5)\n");
  const model::Instance trap2 = sim::range_shadow_trap();
  show("greedy", trap2, sectors::solve_greedy(trap2));
  show("local search", trap2, sectors::solve_local_search(trap2));
  show("exact", trap2, sectors::solve_exact(trap2));
  std::printf("  greedy grabs the near customer with the long-range antenna"
              " and strands the far one;\n  only global reasoning (exact)"
              " recovers the optimum.\n");
  return 0;
}
