// Coverage planning: "how many antennas do we need?" -- the dual question.
//
//   $ ./coverage_planning [n] [seed]
//
// A rural operator must serve EVERY subscriber (universal-service mandate)
// and wants the smallest deployment of a fixed antenna SKU. This example
// sizes the deployment across candidate SKUs (beam width x capacity),
// compares the greedy and next-fit planners against the certified lower
// bound, and writes an SVG of the chosen plan.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/bench_util/table.hpp"
#include "src/sectorpack.hpp"

using namespace sectorpack;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 80;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 17;

  sim::Rng rng(seed);
  sim::WorkloadConfig wc;
  wc.num_customers = n;
  wc.spatial = sim::Spatial::kHotspots;
  wc.num_hotspots = 5;
  wc.hotspot_sigma = 14.0;
  wc.demand = sim::DemandDist::kUniformInt;
  wc.demand_min = 1;
  wc.demand_max = 8;
  const std::vector<model::Customer> customers =
      sim::generate_customers(wc, rng);
  double total_demand = 0.0;
  for (const auto& c : customers) total_demand += c.demand;

  std::printf("Region: %zu subscribers, total demand %.0f, universal"
              " service required\n\n", n, total_demand);

  struct Sku {
    const char* name;
    double rho_deg;
    double capacity;
  };
  const Sku skus[] = {
      {"narrow/high-cap", 45.0, 80.0},
      {"medium", 90.0, 60.0},
      {"wide/low-cap", 180.0, 40.0},
  };

  bench_util::Table table({"SKU", "beam", "capacity", "lower_bound",
                           "greedy", "nextfit"});
  cover::CoverResult best_plan;
  model::AntennaSpec best_type{};
  std::size_t best_count = customers.size() + 1;

  for (const Sku& sku : skus) {
    const model::AntennaSpec type{geom::deg_to_rad(sku.rho_deg), 200.0,
                                  sku.capacity};
    const std::size_t lb = cover::lower_bound(customers, type);
    cover::CoverResult greedy = cover::solve_greedy(customers, type);
    cover::CoverResult nextfit = cover::solve_sweep_nextfit(customers, type);
    table.add_row({sku.name, bench_util::cell(sku.rho_deg, 0),
                   bench_util::cell(sku.capacity, 0), bench_util::cell(lb),
                   bench_util::cell(greedy.num_antennas()),
                   bench_util::cell(nextfit.num_antennas())});
    cover::CoverResult& better =
        greedy.num_antennas() <= nextfit.num_antennas() ? greedy : nextfit;
    if (better.num_antennas() < best_count) {
      best_count = better.num_antennas();
      best_plan = std::move(better);
      best_type = type;
    }
  }
  table.print(std::cout);

  std::printf("\nBest plan: %zu antennas of beam %.0f deg / capacity %.0f\n",
              best_count, geom::rad_to_deg(best_type.rho),
              best_type.capacity);
  const bool valid = cover::validate_cover(customers, best_type, best_plan);
  std::printf("cover validator: %s\n", valid ? "every subscriber served"
                                             : "ERROR: invalid cover");

  // Render the chosen plan.
  std::vector<model::AntennaSpec> specs(best_count, best_type);
  const model::Instance inst{customers, specs};
  model::Solution plan;
  plan.alpha = best_plan.alphas;
  plan.assign = best_plan.assign;
  viz::write_svg("coverage_plan.svg", inst, &plan);
  std::printf("wrote coverage_plan.svg\n");
  return valid ? 0 : 1;
}
